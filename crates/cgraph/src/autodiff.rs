//! Backward-graph construction (reverse-mode autodiff over the op IR).
//!
//! Given a forward graph ending in a [`OpKind::CrossEntropy`] loss, this pass
//! appends the backward ops (vector–Jacobian products per forward op),
//! incremental gradient-accumulation `Add` ops where a tensor feeds several
//! consumers, and one `SgdUpdate` per trainable weight. The generated ops carry the
//! right *cost structure* — e.g. a matmul's backward is two matmuls, so the
//! paper's "backward ≈ 2× forward FLOPs" emerges from the op model rather
//! than being asserted.

use std::collections::HashMap;

use crate::graph::{Graph, GraphError};
use crate::op::{OpId, OpKind, Phase, PointwiseFn};
use crate::tensor::{DType, TensorId, TensorKind};

/// Result of [`build_training_step`].
#[derive(Clone, Debug)]
pub struct TrainingStep {
    /// Gradient tensor per weight, in weight-creation order.
    pub weight_grads: Vec<(TensorId, TensorId)>,
    /// Number of backward ops appended.
    pub backward_ops: usize,
    /// Number of update ops appended.
    pub update_ops: usize,
}

/// Context threaded through the per-op backward rules.
struct Diff<'g> {
    g: &'g mut Graph,
    /// Partial gradients accumulated per forward tensor.
    partials: HashMap<TensorId, Vec<TensorId>>,
    /// Next free `#i` suffix per base name. Suffixes are only ever consumed
    /// in ascending order and names are never removed, so caching the probe
    /// cursor makes `unique_name` O(1) amortized instead of O(duplicates) —
    /// unrolled graphs repeat bases like `acc_grad_w.out` thousands of times.
    name_cursor: HashMap<String, u32>,
}

impl<'g> Diff<'g> {
    /// All gradients — including weight gradients — are freeable: a weight
    /// gradient's last consumer is its `SgdUpdate`, after which the memory
    /// is released. Marking partials persistent would hold every
    /// per-timestep partial for the whole step and inflate the footprint by
    /// orders of magnitude (this is what `TensorKind::WeightGradient`
    /// models for frameworks that do keep them; see the footprint ablation).
    fn grad_kind(&self, _forward: TensorId) -> TensorKind {
        TensorKind::Gradient
    }

    /// Record a partial gradient for `forward`. A second partial is folded
    /// into the first immediately with an `Add` op — incremental
    /// accumulation, so at most one partial per tensor is ever live (a
    /// framework that deferred all accumulation to one `AddN` would hold
    /// every per-timestep weight-gradient simultaneously and blow up the
    /// footprint).
    fn record(&mut self, forward: TensorId, grad: TensorId) {
        let parts = self.partials.entry(forward).or_default();
        if parts.is_empty() {
            parts.push(grad);
            return;
        }
        let prev = parts[0];
        let shape = self.g.tensor(forward).shape.clone();
        let kind = self.grad_kind(forward);
        let name = format!("acc_grad_{}", self.g.tensor(forward).name);
        let out_name = self.unique_name(format!("{name}.out"));
        let out = self
            .g
            .add_op(
                name,
                OpKind::Pointwise(PointwiseFn::Add),
                vec![prev, grad],
                vec![(out_name, shape, DType::F32, kind)],
                Phase::Backward,
            )
            .expect("accumulation add is always well-formed");
        self.partials.insert(forward, vec![out[0]]);
    }

    /// Skip gradients into raw training data and integer tensors.
    fn wants_grad(&self, t: TensorId) -> bool {
        let tensor = self.g.tensor(t);
        tensor.kind != TensorKind::Input && !matches!(tensor.dtype, DType::I32 | DType::I64)
    }

    /// Finalize the gradient of `t`. Accumulation already happened
    /// incrementally in [`Self::record`], so at most one partial exists.
    fn finalize(&mut self, t: TensorId) -> Result<Option<TensorId>, GraphError> {
        match self.partials.remove(&t) {
            None => Ok(None),
            Some(parts) => {
                debug_assert_eq!(parts.len(), 1, "record() keeps one running partial");
                Ok(Some(parts[0]))
            }
        }
    }

    /// Emit a backward op producing one gradient tensor shaped like `like`.
    fn emit(
        &mut self,
        name: &str,
        kind: OpKind,
        inputs: Vec<TensorId>,
        like: TensorId,
    ) -> Result<TensorId, GraphError> {
        let shape = self.g.tensor(like).shape.clone();
        let gkind = self.grad_kind(like);
        let oname = format!("d_{}", self.g.tensor(like).name);
        let oname = self.unique_name(oname);
        let out = self.g.add_op(
            name.to_owned(),
            kind,
            inputs,
            vec![(oname, shape, DType::F32, gkind)],
            Phase::Backward,
        )?;
        let grad = out[0];
        self.record(like, grad);
        Ok(grad)
    }
}

impl Diff<'_> {
    /// First free name for `base`: `base`, then `base#1`, `base#2`, …
    /// (identical to a linear probe, but resuming from the cached cursor).
    fn unique_name(&mut self, base: String) -> String {
        if !self.name_cursor.contains_key(&base) {
            self.name_cursor.insert(base.clone(), 1);
            if self.g.find(&base).is_none() {
                return base;
            }
        }
        let mut i = self.name_cursor[&base];
        loop {
            let candidate = format!("{base}#{i}");
            if self.g.find(&candidate).is_none() {
                self.name_cursor.insert(base, i + 1);
                return candidate;
            }
            i += 1;
        }
    }
}

/// Append backward and update phases for a forward graph whose loss is
/// `loss` (must be produced by a [`OpKind::CrossEntropy`] op).
///
/// Returns the weight→gradient pairing. The input graph must already
/// validate; the output graph validates too (checked by tests).
pub fn build_training_step(g: &mut Graph, loss: TensorId) -> Result<TrainingStep, GraphError> {
    let loss_producer = g
        .producer(loss)
        .unwrap_or_else(|| panic!("loss tensor has no producer"));
    assert!(
        matches!(g.op(loss_producer).kind, OpKind::CrossEntropy),
        "build_training_step requires a CrossEntropy loss, got {:?}",
        g.op(loss_producer).kind
    );

    let mut span = obs::span("cgraph.autodiff").with_arg("graph", g.name.as_str());
    let forward_ops: Vec<OpId> = g.ops().iter().map(|o| o.id()).collect();
    let ops_before = g.ops().len();
    span.arg("forward_ops", ops_before);
    let mut diff = Diff {
        g,
        partials: HashMap::new(),
        name_cursor: HashMap::new(),
    };

    for &op_id in forward_ops.iter().rev() {
        backward_for_op(&mut diff, op_id)?;
    }

    // Weight updates.
    let weights: Vec<TensorId> = diff
        .g
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Weight)
        .map(|t| t.id())
        .collect();
    let mut weight_grads = Vec::new();
    let mut update_ops = 0;
    for w in weights {
        if let Some(gw) = diff.finalize(w)? {
            let name = format!("sgd_{}", diff.g.tensor(w).name);
            diff.g
                .add_op(name, OpKind::SgdUpdate, vec![w, gw], vec![], Phase::Update)?;
            weight_grads.push((w, gw));
            update_ops += 1;
        }
    }

    let backward_ops = diff.g.ops().len() - ops_before - update_ops;
    span.arg("backward_ops", backward_ops);
    span.arg("update_ops", update_ops);
    Ok(TrainingStep {
        weight_grads,
        backward_ops,
        update_ops,
    })
}

fn backward_for_op(diff: &mut Diff<'_>, op_id: OpId) -> Result<(), GraphError> {
    let op = diff.g.op(op_id).clone();
    let name = format!("bwd_{}", op.name);

    // CrossEntropy seeds the chain: it needs no upstream gradient.
    if matches!(op.kind, OpKind::CrossEntropy) {
        let (logits, labels) = (op.inputs[0], op.inputs[1]);
        diff.emit(
            &name,
            OpKind::CrossEntropyGrad,
            vec![logits, labels],
            logits,
        )?;
        return Ok(());
    }

    // Collect upstream gradients for this op's outputs.
    let mut gys = Vec::with_capacity(op.outputs.len());
    for &y in &op.outputs {
        gys.push(diff.finalize(y)?);
    }
    if gys.iter().all(|g| g.is_none()) {
        return Ok(()); // nothing downstream uses these outputs
    }

    match &op.kind {
        OpKind::MatMul { ta, tb } => {
            let gy = gys[0].expect("matmul has one output");
            let (a, b) = (op.inputs[0], op.inputs[1]);
            assert!(
                !(*ta && *tb),
                "backward for doubly-transposed matmul not supported"
            );
            if diff.wants_grad(a) {
                let (kind, operands) = match (ta, tb) {
                    // C = A·B   → dA = g·Bᵀ
                    (false, false) => (
                        OpKind::MatMul {
                            ta: false,
                            tb: true,
                        },
                        vec![gy, b],
                    ),
                    // C = Aᵀ·B  → dA = B·gᵀ
                    (true, false) => (
                        OpKind::MatMul {
                            ta: false,
                            tb: true,
                        },
                        vec![b, gy],
                    ),
                    // C = A·Bᵀ  → dA = g·B
                    (false, true) => (
                        OpKind::MatMul {
                            ta: false,
                            tb: false,
                        },
                        vec![gy, b],
                    ),
                    (true, true) => unreachable!(),
                };
                diff.emit(&format!("{name}_dA"), kind, operands, a)?;
            }
            if diff.wants_grad(b) {
                let (kind, operands) = match (ta, tb) {
                    (false, false) => (
                        OpKind::MatMul {
                            ta: true,
                            tb: false,
                        },
                        vec![a, gy],
                    ), // Aᵀ·g
                    (true, false) => (
                        OpKind::MatMul {
                            ta: false,
                            tb: false,
                        },
                        vec![a, gy],
                    ), // A·g
                    (false, true) => (
                        OpKind::MatMul {
                            ta: true,
                            tb: false,
                        },
                        vec![gy, a],
                    ), // gᵀ·A
                    (true, true) => unreachable!(),
                };
                diff.emit(&format!("{name}_dB"), kind, operands, b)?;
            }
        }
        OpKind::BatchMatMul { ta, tb } => {
            let gy = gys[0].expect("batch matmul has one output");
            let (a, b) = (op.inputs[0], op.inputs[1]);
            assert!(!*ta, "backward for transposed-A batch matmul not supported");
            if diff.wants_grad(a) {
                // dA = g·Bᵀ (tb=false) or g·B (tb=true)
                diff.emit(
                    &format!("{name}_dA"),
                    OpKind::BatchMatMul {
                        ta: false,
                        tb: !*tb,
                    },
                    vec![gy, b],
                    a,
                )?;
            }
            if diff.wants_grad(b) {
                // dB = Aᵀ·g, or (g)ᵀ·A when forward used Bᵀ
                let (kind, operands) = if *tb {
                    (
                        OpKind::BatchMatMul {
                            ta: true,
                            tb: false,
                        },
                        vec![gy, a],
                    )
                } else {
                    (
                        OpKind::BatchMatMul {
                            ta: true,
                            tb: false,
                        },
                        vec![a, gy],
                    )
                };
                diff.emit(&format!("{name}_dB"), kind, operands, b)?;
            }
        }
        OpKind::Conv2d {
            kh,
            kw,
            stride,
            pad,
        } => {
            let gy = gys[0].expect("conv has one output");
            let (x, w) = (op.inputs[0], op.inputs[1]);
            if diff.wants_grad(x) {
                diff.emit(
                    &format!("{name}_dX"),
                    OpKind::Conv2dBackpropInput {
                        kh: *kh,
                        kw: *kw,
                        stride: *stride,
                        pad: *pad,
                    },
                    vec![gy, w],
                    x,
                )?;
            }
            diff.emit(
                &format!("{name}_dW"),
                OpKind::Conv2dBackpropFilter {
                    kh: *kh,
                    kw: *kw,
                    stride: *stride,
                    pad: *pad,
                },
                vec![x, gy],
                w,
            )?;
        }
        OpKind::Pointwise(f) => {
            let gy = gys[0].expect("pointwise has one output");
            match f {
                PointwiseFn::Add => {
                    // dA = dB = g: route the same tensor to both operands.
                    for &i in &op.inputs {
                        if diff.wants_grad(i) {
                            diff.record(i, gy);
                        }
                    }
                }
                PointwiseFn::Sub => {
                    if diff.wants_grad(op.inputs[0]) {
                        diff.record(op.inputs[0], gy);
                    }
                    if diff.wants_grad(op.inputs[1]) {
                        diff.emit(
                            &format!("{name}_neg"),
                            OpKind::Pointwise(PointwiseFn::Scale),
                            vec![gy],
                            op.inputs[1],
                        )?;
                    }
                }
                PointwiseFn::Mul => {
                    let (a, b) = (op.inputs[0], op.inputs[1]);
                    if diff.wants_grad(a) {
                        diff.emit(
                            &format!("{name}_dA"),
                            OpKind::Pointwise(PointwiseFn::Mul),
                            vec![gy, b],
                            a,
                        )?;
                    }
                    if diff.wants_grad(b) {
                        diff.emit(
                            &format!("{name}_dB"),
                            OpKind::Pointwise(PointwiseFn::Mul),
                            vec![gy, a],
                            b,
                        )?;
                    }
                }
                PointwiseFn::Copy => {
                    if diff.wants_grad(op.inputs[0]) {
                        diff.record(op.inputs[0], gy);
                    }
                }
                _ => {
                    // Unary nonlinearity: dX = g ⊙ f′(x).
                    let x = op.inputs[0];
                    if diff.wants_grad(x) {
                        diff.emit(
                            &format!("{name}_dX"),
                            OpKind::PointwiseGrad(*f),
                            vec![gy, x],
                            x,
                        )?;
                    }
                }
            }
        }
        OpKind::BiasAdd => {
            let gy = gys[0].expect("bias add has one output");
            let (x, b) = (op.inputs[0], op.inputs[1]);
            if diff.wants_grad(x) {
                diff.record(x, gy);
            }
            // dBias = reduce-sum of g over the leading dims.
            let shape = diff.g.tensor(b).shape.clone();
            let kind = diff.grad_kind(b);
            let oname = diff.unique_name(format!("d_{}", diff.g.tensor(b).name));
            let out = diff.g.add_op(
                format!("{name}_dBias"),
                OpKind::Reduce(crate::op::ReduceKind::Sum),
                vec![gy],
                vec![(oname, shape, DType::F32, kind)],
                Phase::Backward,
            )?;
            diff.record(b, out[0]);
        }
        OpKind::EmbeddingGather => {
            let gy = gys[0].expect("gather has one output");
            let (table, idx) = (op.inputs[0], op.inputs[1]);
            diff.emit(
                &format!("{name}_dTable"),
                OpKind::EmbeddingScatterAdd,
                vec![gy, idx],
                table,
            )?;
        }
        OpKind::Softmax => {
            let gy = gys[0].expect("softmax has one output");
            let y = op.outputs[0];
            let x = op.inputs[0];
            if diff.wants_grad(x) {
                diff.emit(&format!("{name}_dX"), OpKind::SoftmaxGrad, vec![gy, y], x)?;
            }
        }
        OpKind::BatchNorm => {
            let gy = gys[0].expect("batch norm has one output");
            let (x, gamma) = (op.inputs[0], op.inputs[1]);
            let dx_shape = diff.g.tensor(x).shape.clone();
            let dgamma_shape = diff.g.tensor(gamma).shape.clone();
            let dx_name = diff.unique_name(format!("d_{}", diff.g.tensor(x).name));
            let dg_name = diff.unique_name(format!("d_{}", diff.g.tensor(gamma).name));
            let dx_kind = diff.grad_kind(x);
            let dg_kind = diff.grad_kind(gamma);
            let outs = diff.g.add_op(
                format!("{name}_grad"),
                OpKind::BatchNormGrad,
                vec![gy, x],
                vec![
                    (dx_name, dx_shape, DType::F32, dx_kind),
                    (dg_name, dgamma_shape, DType::F32, dg_kind),
                ],
                Phase::Backward,
            )?;
            if diff.wants_grad(x) {
                diff.record(x, outs[0]);
            }
            diff.record(gamma, outs[1]);
        }
        OpKind::Pool { kind, k, stride } => {
            let gy = gys[0].expect("pool has one output");
            let x = op.inputs[0];
            if diff.wants_grad(x) {
                let dx_shape = diff.g.tensor(x).shape.clone();
                let dx_name = diff.unique_name(format!("d_{}", diff.g.tensor(x).name));
                let dx_kind = diff.grad_kind(x);
                let outs = diff.g.add_op(
                    format!("{name}_dX"),
                    OpKind::PoolGrad {
                        kind: *kind,
                        k: *k,
                        stride: *stride,
                    },
                    vec![gy],
                    vec![(dx_name, dx_shape, DType::F32, dx_kind)],
                    Phase::Backward,
                )?;
                diff.record(x, outs[0]);
            }
        }
        OpKind::Reduce(_) => {
            let gy = gys[0].expect("reduce has one output");
            let x = op.inputs[0];
            if diff.wants_grad(x) {
                let dx_shape = diff.g.tensor(x).shape.clone();
                let dx_name = diff.unique_name(format!("d_{}", diff.g.tensor(x).name));
                let dx_kind = diff.grad_kind(x);
                let outs = diff.g.add_op(
                    format!("{name}_dX"),
                    OpKind::Broadcast,
                    vec![gy, x],
                    vec![(dx_name, dx_shape, DType::F32, dx_kind)],
                    Phase::Backward,
                )?;
                diff.record(x, outs[0]);
            }
        }
        OpKind::Concat => {
            let gy = gys[0].expect("concat has one output");
            // dXᵢ = split of g, mirroring the forward operand shapes.
            let dtype = DType::F32;
            let outputs: Vec<_> = op
                .inputs
                .iter()
                .map(|&i| {
                    (
                        diff.unique_name(format!("d_{}", diff.g.tensor(i).name)),
                        diff.g.tensor(i).shape.clone(),
                        dtype,
                        diff.grad_kind(i),
                    )
                })
                .collect();
            let outs = diff.g.add_op(
                format!("{name}_dXs"),
                OpKind::Split,
                vec![gy],
                outputs,
                Phase::Backward,
            )?;
            for (&i, &gi) in op.inputs.iter().zip(outs.iter()) {
                if diff.wants_grad(i) {
                    diff.record(i, gi);
                }
            }
        }
        OpKind::Split => {
            // dX = concat of the output grads. Parts with no downstream
            // consumer get a zeros_like gradient (framework semantics).
            let mut parts: Vec<TensorId> = Vec::with_capacity(gys.len());
            for (slot, gy) in gys.iter().enumerate() {
                match gy {
                    Some(t) => parts.push(*t),
                    None => {
                        let fwd = op.outputs[slot];
                        let zero = diff.emit(
                            &format!("{name}_zeros{slot}"),
                            OpKind::Pointwise(PointwiseFn::Copy),
                            vec![fwd],
                            fwd,
                        )?;
                        // The zero grad was recorded against `fwd`; undo that
                        // bookkeeping — it exists only to feed the concat.
                        diff.partials.remove(&fwd);
                        parts.push(zero);
                    }
                }
            }
            let x = op.inputs[0];
            if diff.wants_grad(x) {
                let dx_shape = diff.g.tensor(x).shape.clone();
                let dx_name = diff.unique_name(format!("d_{}", diff.g.tensor(x).name));
                let dx_kind = diff.grad_kind(x);
                let outs = diff.g.add_op(
                    format!("{name}_dX"),
                    OpKind::Concat,
                    parts,
                    vec![(dx_name, dx_shape, DType::F32, dx_kind)],
                    Phase::Backward,
                )?;
                diff.record(x, outs[0]);
            }
        }
        OpKind::Transpose | OpKind::Reshape => {
            let gy = gys[0].expect("unary reshape/transpose output");
            let x = op.inputs[0];
            if diff.wants_grad(x) {
                let kind = if matches!(op.kind, OpKind::Transpose) {
                    OpKind::Transpose
                } else {
                    OpKind::Reshape
                };
                let dx_shape = diff.g.tensor(x).shape.clone();
                let dx_name = diff.unique_name(format!("d_{}", diff.g.tensor(x).name));
                let dx_kind = diff.grad_kind(x);
                let outs = diff.g.add_op(
                    format!("{name}_dX"),
                    kind,
                    vec![gy],
                    vec![(dx_name, dx_shape, DType::F32, dx_kind)],
                    Phase::Backward,
                )?;
                diff.record(x, outs[0]);
            }
        }
        OpKind::CrossEntropy => unreachable!("handled above"),
        kind => panic!("no backward rule for forward op kind {kind:?}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::DType;
    use symath::{Bindings, Expr};

    fn mlp_with_loss() -> (Graph, TensorId) {
        let mut g = Graph::new("mlp");
        let b = Expr::sym("ad_b");
        let x = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let w1 = g.weight("w1", [Expr::int(64), Expr::int(128)]).unwrap();
        let h = g.matmul("fc1", x, w1, false, false).unwrap();
        let h = g.unary("relu", PointwiseFn::Relu, h).unwrap();
        let w2 = g.weight("w2", [Expr::int(128), Expr::int(10)]).unwrap();
        let logits = g.matmul("fc2", h, w2, false, false).unwrap();
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", logits, labels).unwrap();
        (g, loss)
    }

    #[test]
    fn training_graph_validates() {
        let (mut g, loss) = mlp_with_loss();
        let step = build_training_step(&mut g, loss).unwrap();
        g.validate().unwrap();
        assert_eq!(step.update_ops, 2);
        assert_eq!(step.weight_grads.len(), 2);
    }

    #[test]
    fn every_weight_gets_exactly_one_update() {
        let (mut g, loss) = mlp_with_loss();
        build_training_step(&mut g, loss).unwrap();
        let updates: Vec<_> = g
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::SgdUpdate))
            .collect();
        assert_eq!(updates.len(), 2);
        let mut targets: Vec<TensorId> = updates.iter().map(|o| o.inputs[0]).collect();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn backward_flops_approx_twice_forward_for_matmul_heavy_graphs() {
        // Deep enough that interior layers (whose backward is two matmuls)
        // dominate; only the first layer skips dX, pulling the ratio a bit
        // under 2.
        let mut g = Graph::new("deep");
        let b = Expr::sym("ad_deep_b");
        let mut t = g
            .input("x", [b.clone(), Expr::int(128)], DType::F32)
            .unwrap();
        for i in 0..8 {
            let w = g
                .weight(format!("w{i}"), [Expr::int(128), Expr::int(128)])
                .unwrap();
            t = g.matmul(&format!("fc{i}"), t, w, false, false).unwrap();
            t = g.unary(&format!("relu{i}"), PointwiseFn::Relu, t).unwrap();
        }
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", t, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let n = g
            .stats()
            .eval(&Bindings::new().with("ad_deep_b", 32.0))
            .unwrap();
        let ratio = n.flops_backward / n.flops_forward;
        assert!(
            ratio > 1.7 && ratio < 2.1,
            "backward/forward = {ratio} out of expected band"
        );
    }

    #[test]
    fn residual_add_shares_gradient_and_accumulates() {
        // y = relu(x·w); z = y + y would be degenerate; use two consumers of
        // one tensor instead: out = (h·w2) with h also feeding an Add.
        let mut g = Graph::new("resid");
        let b = Expr::sym("ad_b2");
        let x = g.input("x", [b.clone(), Expr::int(8)], DType::F32).unwrap();
        let w1 = g.weight("w1", [Expr::int(8), Expr::int(8)]).unwrap();
        let h = g.matmul("fc1", x, w1, false, false).unwrap();
        let w2 = g.weight("w2", [Expr::int(8), Expr::int(8)]).unwrap();
        let h2 = g.matmul("fc2", h, w2, false, false).unwrap();
        let sum = g.binary("residual", PointwiseFn::Add, h, h2).unwrap();
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", sum, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        g.validate().unwrap();
        // h has two consumers (fc2 and residual) → its gradient must be
        // accumulated by an incremental Add op.
        let has_acc = g.ops().iter().any(|o| o.name.starts_with("acc_grad_"));
        assert!(
            has_acc,
            "expected incremental accumulation for fan-out tensor"
        );
    }

    #[test]
    fn embedding_gather_gets_scatter_backward() {
        let mut g = Graph::new("emb");
        let b = Expr::sym("ad_b3");
        let table = g.weight("table", [Expr::int(100), Expr::int(16)]).unwrap();
        let idx = g.input("idx", [b.clone()], DType::I32).unwrap();
        let e = g.gather("lookup", table, idx).unwrap();
        let w = g.weight("w", [Expr::int(16), Expr::int(100)]).unwrap();
        let logits = g.matmul("out", e, w, false, false).unwrap();
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", logits, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        g.validate().unwrap();
        assert!(g
            .ops()
            .iter()
            .any(|o| matches!(o.kind, OpKind::EmbeddingScatterAdd)));
    }

    #[test]
    fn unused_branches_get_no_backward() {
        let mut g = Graph::new("dead");
        let b = Expr::sym("ad_b4");
        let x = g.input("x", [b.clone(), Expr::int(8)], DType::F32).unwrap();
        let w = g.weight("w", [Expr::int(8), Expr::int(8)]).unwrap();
        let h = g.matmul("fc", x, w, false, false).unwrap();
        // Dead branch: a tanh nobody consumes.
        let wd = g.weight("w_dead", [Expr::int(8), Expr::int(8)]).unwrap();
        let dead = g.matmul("dead_fc", h, wd, false, false).unwrap();
        let _dead2 = g.unary("dead_tanh", PointwiseFn::Tanh, dead).unwrap();
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", h, labels).unwrap();
        let step = build_training_step(&mut g, loss).unwrap();
        g.validate().unwrap();
        // Only `w` is updated; `w_dead` got no gradient.
        assert_eq!(step.update_ops, 1);
    }

    #[test]
    #[should_panic(expected = "CrossEntropy")]
    fn rejects_non_cross_entropy_loss() {
        let mut g = Graph::new("bad");
        let x = g
            .input("x", [Expr::int(4), Expr::int(4)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(4), Expr::int(4)]).unwrap();
        let y = g.matmul("mm", x, w, false, false).unwrap();
        let _ = build_training_step(&mut g, y);
    }
}
