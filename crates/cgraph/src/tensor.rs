//! Tensors: symbolic shapes, element types, and roles in the training graph.

use std::fmt;

use serde::{Deserialize, Serialize};
use symath::{Bindings, Expr, ExprId, UnboundSymbol};

/// Element type of a tensor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit floating point.
    F16,
    /// 32-bit floating point (the paper's default training precision).
    F32,
    /// 64-bit floating point.
    F64,
    /// 32-bit integer (indices).
    I32,
    /// 64-bit integer (indices).
    I64,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            DType::F16 => 2,
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::I32 => "i32",
            DType::I64 => "i64",
        };
        write!(f, "{s}")
    }
}

/// The role a tensor plays during a training step. Roles drive both the
/// footprint model (weights and their gradients are persistent; activations
/// are freed once consumed) and parameter counting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TensorKind {
    /// Training data fed into the graph; counts toward algorithmic IO.
    Input,
    /// Trainable model parameters; persistent across the step.
    Weight,
    /// Intermediate forward values; freed once all consumers have run.
    Activation,
    /// Backward-pass gradients w.r.t. activations; freed like activations.
    Gradient,
    /// Accumulated gradients w.r.t. weights; persistent until the update.
    WeightGradient,
    /// Optimizer state (momentum/Adam moments); persistent across steps.
    OptimizerState,
}

impl TensorKind {
    /// Whether tensors of this kind stay allocated for the whole step.
    pub fn is_persistent(&self) -> bool {
        matches!(
            self,
            TensorKind::Weight | TensorKind::WeightGradient | TensorKind::OptimizerState
        )
    }
}

/// A tensor shape: an ordered list of symbolic dimensions.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Shape(pub Vec<Expr>);

impl Shape {
    /// A scalar (rank-0) shape.
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    /// Build a shape from anything convertible to dimensions.
    pub fn of(dims: impl IntoIterator<Item = Expr>) -> Shape {
        Shape(dims.into_iter().collect())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension `i`.
    pub fn dim(&self, i: usize) -> &Expr {
        &self.0[i]
    }

    /// Total element count as a symbolic expression.
    pub fn elements(&self) -> Expr {
        self.0.iter().fold(Expr::one(), |acc, d| acc * d)
    }

    /// Total element count as an interned expression. The fold mirrors
    /// [`Shape::elements`] step for step through the memoized `mul`, so the
    /// result is the same canonical expression — but repeated shapes (an
    /// unrolled graph has thousands of tensors over a handful of distinct
    /// shapes) cost one memo lookup per dimension instead of a tree product.
    pub fn elements_id(&self) -> ExprId {
        self.0
            .iter()
            .fold(ExprId::one(), |acc, d| acc.mul(d.interned()))
    }

    /// Numeric element count under `bindings`.
    pub fn elements_u64(&self, bindings: &Bindings) -> Result<u64, UnboundSymbol> {
        self.elements().eval_u64(bindings)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl<const N: usize> From<[Expr; N]> for Shape {
    fn from(dims: [Expr; N]) -> Shape {
        Shape(dims.into())
    }
}

impl From<Vec<Expr>> for Shape {
    fn from(dims: Vec<Expr>) -> Shape {
        Shape(dims)
    }
}

/// Stable identifier of a tensor within its graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TensorId(pub(crate) u32);

impl TensorId {
    /// The raw index (useful for dense side tables).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// A tensor node: named, shaped, typed data flowing between ops.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Tensor {
    pub(crate) id: TensorId,
    /// Human-readable name, unique within the graph.
    pub name: String,
    /// Symbolic shape.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
    /// Role in the training step.
    pub kind: TensorKind,
}

impl Tensor {
    /// The tensor's identifier.
    pub fn id(&self) -> TensorId {
        self.id
    }

    /// Size in bytes as a symbolic expression.
    pub fn bytes(&self) -> Expr {
        self.shape.elements() * Expr::from(self.dtype.size_bytes())
    }

    /// Size in bytes as an interned expression (see [`Shape::elements_id`]).
    pub fn bytes_id(&self) -> ExprId {
        self.shape
            .elements_id()
            .mul(ExprId::int(self.dtype.size_bytes() as i128))
    }

    /// Numeric size in bytes under `bindings`.
    pub fn bytes_u64(&self, bindings: &Bindings) -> Result<u64, UnboundSymbol> {
        Ok(self.shape.elements_u64(bindings)? * self.dtype.size_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_elements_multiply() {
        let b = Expr::sym("t_b");
        let h = Expr::sym("t_h");
        let s = Shape::from([b.clone(), h.clone(), Expr::int(4)]);
        assert_eq!(s.elements(), b * h * Expr::int(4));
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape_is_one_element() {
        assert_eq!(Shape::scalar().elements(), Expr::one());
    }

    #[test]
    fn tensor_bytes_use_dtype_width() {
        let t = Tensor {
            id: TensorId(0),
            name: "w".into(),
            shape: Shape::from([Expr::int(10), Expr::int(10)]),
            dtype: DType::F32,
            kind: TensorKind::Weight,
        };
        assert_eq!(t.bytes().as_const().unwrap().num(), 400);
        assert_eq!(t.bytes_u64(&Bindings::new()).unwrap(), 400);
    }

    #[test]
    fn persistence_by_kind() {
        assert!(TensorKind::Weight.is_persistent());
        assert!(TensorKind::WeightGradient.is_persistent());
        assert!(!TensorKind::Activation.is_persistent());
        assert!(!TensorKind::Gradient.is_persistent());
        assert!(!TensorKind::Input.is_persistent());
    }

    #[test]
    fn shape_displays_dims() {
        let s = Shape::from([Expr::sym("t_n"), Expr::int(3)]);
        assert_eq!(s.to_string(), "[t_n, 3]");
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
    }
}
