//! Op kinds and their algorithmic cost rules.
//!
//! Costs follow the paper's definitions (§2.1):
//!
//! * **Algorithmic FLOPs** — arithmetic required by the math of the op
//!   (multiplies *and* adds counted separately, so a matmul is `2·m·k·n`),
//!   excluding addressing/loop overhead.
//! * **Algorithmic bytes** — bytes the op must read as inputs plus write as
//!   outputs, ignoring caches and intermediates. Gather/scatter ops only
//!   touch the rows they address, and `Reshape` is free (metadata only).

use serde::{Deserialize, Serialize};
use symath::Expr;

use crate::tensor::{Shape, Tensor, TensorId};

/// Unary/binary pointwise functions with their per-element FLOP cost.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PointwiseFn {
    /// Elementwise addition (binary).
    Add,
    /// Elementwise subtraction (binary).
    Sub,
    /// Elementwise (Hadamard) product (binary).
    Mul,
    /// Logistic sigmoid (unary).
    Sigmoid,
    /// Hyperbolic tangent (unary).
    Tanh,
    /// Rectified linear unit (unary).
    Relu,
    /// Exponential (unary).
    Exp,
    /// Identity / copy (unary) — zero FLOPs, still moves bytes.
    Copy,
    /// Multiply by a compile-time scalar (unary).
    Scale,
}

impl PointwiseFn {
    /// Number of tensor operands.
    pub fn arity(&self) -> usize {
        match self {
            PointwiseFn::Add | PointwiseFn::Sub | PointwiseFn::Mul => 2,
            _ => 1,
        }
    }

    /// Algorithmic FLOPs per output element.
    ///
    /// Transcendentals are charged a small constant (4) following the
    /// convention that they lower to a handful of fused arithmetic ops;
    /// the paper's counts are dominated by matrix math either way.
    pub fn flops_per_element(&self) -> u64 {
        match self {
            PointwiseFn::Copy => 0,
            PointwiseFn::Add
            | PointwiseFn::Sub
            | PointwiseFn::Mul
            | PointwiseFn::Relu
            | PointwiseFn::Scale => 1,
            PointwiseFn::Exp => 2,
            PointwiseFn::Sigmoid | PointwiseFn::Tanh => 4,
        }
    }
}

/// Pooling flavor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Reduction flavor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ReduceKind {
    /// Sum over reduced axes.
    Sum,
    /// Arithmetic mean over reduced axes.
    Mean,
    /// Maximum over reduced axes.
    Max,
}

/// The mathematical operation an [`Op`] performs.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix multiply `A(m×k) · B(k×n)`, with optional transposes
    /// applied to the *stored* operands before the multiply.
    MatMul {
        /// Transpose the first operand.
        ta: bool,
        /// Transpose the second operand.
        tb: bool,
    },
    /// Batched matrix multiply over a shared leading batch dimension.
    BatchMatMul {
        /// Transpose the first operand's trailing two dims.
        ta: bool,
        /// Transpose the second operand's trailing two dims.
        tb: bool,
    },
    /// 2-D convolution, NCHW input, OIHW weights.
    Conv2d {
        /// Kernel height.
        kh: u64,
        /// Kernel width.
        kw: u64,
        /// Stride (same in both spatial dims).
        stride: u64,
        /// Symmetric zero padding.
        pad: u64,
    },
    /// Pointwise function application.
    Pointwise(PointwiseFn),
    /// Broadcast bias addition over the trailing dimension.
    BiasAdd,
    /// Table lookup: `gather(table[v,e], idx[..]) -> [.., e]`. Zero FLOPs;
    /// reads only the gathered rows.
    EmbeddingGather,
    /// Backward of the gather: scatter-add gradient rows into the table
    /// gradient. One add per gathered element.
    EmbeddingScatterAdd,
    /// Numerically-stabilized softmax over the trailing dimension.
    Softmax,
    /// Batch normalization (training mode: statistics + normalize + affine).
    BatchNorm,
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Kernel edge (square kernels).
        k: u64,
        /// Stride.
        stride: u64,
    },
    /// Reduction over all non-kept axes.
    Reduce(ReduceKind),
    /// Concatenate along an axis — pure data movement.
    Concat,
    /// Slice/split along an axis — pure data movement.
    Split,
    /// Transpose / permute — pure data movement.
    Transpose,
    /// Metadata-only shape change; free.
    Reshape,
    /// Fused log-softmax + negative-log-likelihood loss.
    CrossEntropy,
    /// Variadic elementwise sum (gradient accumulation).
    AddN,
    /// In-place SGD weight update `w ← w − lr·g`. Sink op (no outputs).
    SgdUpdate,
    /// Gradient of [`OpKind::Conv2d`] w.r.t. its input:
    /// `dX = conv2dᵀ(dY, W)`. Same FLOPs as the forward conv.
    Conv2dBackpropInput {
        /// Kernel height.
        kh: u64,
        /// Kernel width.
        kw: u64,
        /// Stride of the forward conv.
        stride: u64,
        /// Padding of the forward conv.
        pad: u64,
    },
    /// Gradient of [`OpKind::Conv2d`] w.r.t. its filter:
    /// `dW = corr(X, dY)`. Same FLOPs as the forward conv.
    Conv2dBackpropFilter {
        /// Kernel height.
        kh: u64,
        /// Kernel width.
        kw: u64,
        /// Stride of the forward conv.
        stride: u64,
        /// Padding of the forward conv.
        pad: u64,
    },
    /// Gradient of a unary pointwise function: `dX = dY ⊙ f′(x)`.
    /// Consumes the upstream gradient and the saved forward operand.
    PointwiseGrad(PointwiseFn),
    /// Gradient of [`OpKind::Softmax`]: `dX = y ⊙ (dY − Σ dY·y)`.
    SoftmaxGrad,
    /// Gradient of [`OpKind::BatchNorm`]; also produces the scale/shift
    /// parameter gradient.
    BatchNormGrad,
    /// Gradient of [`OpKind::Pool`] (un-pooling / scatter).
    PoolGrad {
        /// Max or average.
        kind: PoolKind,
        /// Kernel edge.
        k: u64,
        /// Stride.
        stride: u64,
    },
    /// Broadcast a reduced gradient back to the pre-reduction shape.
    Broadcast,
    /// Gradient of [`OpKind::CrossEntropy`]: `dLogits = softmax(x) − onehot(y)`.
    CrossEntropyGrad,
    /// Momentum update `v ← µv + g; w ← w − lr·v`. Inputs `[w, g, v]`;
    /// sink op (state updated in place).
    MomentumUpdate,
    /// Adam update (bias-corrected first/second moments). Inputs
    /// `[w, g, m, v]`; sink op.
    AdamUpdate,
}

/// Which phase of the training step an op belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Phase {
    /// Forward propagation.
    Forward,
    /// Backward propagation.
    Backward,
    /// Weight update.
    Update,
}

/// Stable identifier of an op within its graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The raw index (useful for dense side tables).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// A node in the compute graph: an operation consuming and producing tensors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Op {
    pub(crate) id: OpId,
    /// Human-readable name, unique within the graph.
    pub name: String,
    /// The operation performed.
    pub kind: OpKind,
    /// Consumed tensors, in operand order.
    pub inputs: Vec<TensorId>,
    /// Produced tensors.
    pub outputs: Vec<TensorId>,
    /// Training phase this op belongs to.
    pub phase: Phase,
}

impl Op {
    /// The op's identifier.
    pub fn id(&self) -> OpId {
        self.id
    }
}

fn total_elements(tensors: &[&Tensor]) -> Expr {
    tensors.iter().map(|t| t.shape.elements()).sum()
}

fn total_bytes(tensors: &[&Tensor]) -> Expr {
    tensors.iter().map(|t| t.bytes()).sum()
}

/// Algorithmic FLOPs of `kind` given resolved operand tensors.
pub fn op_flops(kind: &OpKind, inputs: &[&Tensor], outputs: &[&Tensor]) -> Expr {
    match kind {
        OpKind::MatMul { ta, .. } => {
            // Output is m×n; contraction length comes from operand A.
            let out = &outputs[0].shape;
            let a = &inputs[0].shape;
            let k = if *ta { a.dim(0) } else { a.dim(a.rank() - 1) };
            Expr::int(2) * out.elements() * k
        }
        OpKind::BatchMatMul { ta, .. } => {
            let out = &outputs[0].shape;
            let a = &inputs[0].shape;
            let k = if *ta {
                a.dim(a.rank() - 2)
            } else {
                a.dim(a.rank() - 1)
            };
            Expr::int(2) * out.elements() * k
        }
        OpKind::Conv2d { kh, kw, .. } => {
            // 2 · N·OH·OW·CO · CI·KH·KW
            let out = &outputs[0].shape; // [n, co, oh, ow]
            let ci = inputs[1].shape.dim(1).clone(); // weights [co, ci, kh, kw]
            Expr::int(2) * out.elements() * ci * Expr::from(kh * kw)
        }
        OpKind::Pointwise(f) => Expr::from(f.flops_per_element()) * outputs[0].shape.elements(),
        OpKind::BiasAdd => outputs[0].shape.elements(),
        OpKind::EmbeddingGather => Expr::zero(),
        OpKind::EmbeddingScatterAdd => {
            // One accumulate per gathered element.
            inputs[0].shape.elements()
        }
        OpKind::Softmax => Expr::int(5) * outputs[0].shape.elements(),
        OpKind::BatchNorm => Expr::int(8) * outputs[0].shape.elements(),
        OpKind::Pool { k, .. } => Expr::from(k * k) * outputs[0].shape.elements(),
        OpKind::Reduce(_) => total_elements(inputs),
        OpKind::Concat | OpKind::Split | OpKind::Transpose | OpKind::Reshape => Expr::zero(),
        OpKind::CrossEntropy => Expr::int(5) * inputs[0].shape.elements(),
        OpKind::AddN => {
            let n = inputs.len() as u64;
            Expr::from(n.saturating_sub(1)) * outputs[0].shape.elements()
        }
        OpKind::SgdUpdate => Expr::int(2) * inputs[0].shape.elements(),
        OpKind::Conv2dBackpropInput { kh, kw, .. } => {
            // inputs: [dY (n,co,oh,ow), W (co,ci,kh,kw)]
            let dy = &inputs[0].shape;
            let ci = inputs[1].shape.dim(1).clone();
            Expr::int(2) * dy.elements() * ci * Expr::from(kh * kw)
        }
        OpKind::Conv2dBackpropFilter { kh, kw, .. } => {
            // inputs: [X, dY]; output dW (co,ci,kh,kw)
            let dy = &inputs[1].shape;
            let ci = outputs[0].shape.dim(1).clone();
            Expr::int(2) * dy.elements() * ci * Expr::from(kh * kw)
        }
        OpKind::PointwiseGrad(f) => {
            Expr::from(f.flops_per_element() + 1) * outputs[0].shape.elements()
        }
        OpKind::SoftmaxGrad => Expr::int(4) * outputs[0].shape.elements(),
        OpKind::BatchNormGrad => Expr::int(11) * outputs[0].shape.elements(),
        OpKind::PoolGrad { .. } => inputs[0].shape.elements(),
        OpKind::Broadcast => Expr::zero(),
        OpKind::CrossEntropyGrad => Expr::int(3) * outputs[0].shape.elements(),
        OpKind::MomentumUpdate => Expr::int(4) * inputs[0].shape.elements(),
        OpKind::AdamUpdate => Expr::int(10) * inputs[0].shape.elements(),
    }
}

/// Algorithmic bytes `(read, written)` of `kind` given resolved operands.
pub fn op_bytes(kind: &OpKind, inputs: &[&Tensor], outputs: &[&Tensor]) -> (Expr, Expr) {
    match kind {
        OpKind::Reshape => (Expr::zero(), Expr::zero()),
        OpKind::EmbeddingGather => {
            // Read the gathered rows (same volume as the output) plus the
            // indices; write the output. The full table is *not* streamed.
            let idx_bytes = inputs[1].bytes();
            let out_bytes = total_bytes(outputs);
            (out_bytes.clone() + idx_bytes, out_bytes)
        }
        OpKind::EmbeddingScatterAdd => {
            // Read incoming gradient rows + indices + current accumulator
            // rows; write the accumulator rows back.
            let grad_bytes = inputs[0].bytes();
            let idx_bytes = inputs[1].bytes();
            (Expr::int(2) * grad_bytes.clone() + idx_bytes, grad_bytes)
        }
        OpKind::SgdUpdate => {
            // Read weight + gradient; write weight.
            let w = inputs[0].bytes();
            let g = inputs[1].bytes();
            (w.clone() + g, w)
        }
        OpKind::MomentumUpdate => {
            // Read w, g, v; write w, v.
            let e = inputs[0].bytes();
            (Expr::int(3) * e.clone(), Expr::int(2) * e)
        }
        OpKind::AdamUpdate => {
            // Read w, g, m, v; write w, m, v.
            let e = inputs[0].bytes();
            (Expr::int(4) * e.clone(), Expr::int(3) * e)
        }
        _ => (total_bytes(inputs), total_bytes(outputs)),
    }
}

/// Infer the output shape of a shape-polymorphic op. Ops whose output shape
/// is not a pure function of input shapes (e.g. `Split`) are handled by the
/// graph builder instead.
pub fn infer_matmul_shape(kind: &OpKind, a: &Shape, b: &Shape) -> Shape {
    match kind {
        OpKind::MatMul { ta, tb } => {
            let m = if *ta { a.dim(1) } else { a.dim(0) }.clone();
            let n = if *tb { b.dim(0) } else { b.dim(1) }.clone();
            Shape::from(vec![m, n])
        }
        OpKind::BatchMatMul { ta, tb } => {
            let r = a.rank();
            let mut dims: Vec<Expr> = a.0[..r - 2].to_vec();
            let m = if *ta { a.dim(r - 1) } else { a.dim(r - 2) }.clone();
            let rb = b.rank();
            let n = if *tb { b.dim(rb - 2) } else { b.dim(rb - 1) }.clone();
            dims.push(m);
            dims.push(n);
            Shape(dims)
        }
        _ => panic!("infer_matmul_shape on non-matmul op"),
    }
}

/// Output spatial size of a convolution/pooling window:
/// `⌊(x + 2·pad − k)/stride⌋ + 1`.
///
/// Constant inputs floor exactly (framework semantics); symbolic inputs use
/// the exact rational form, which agrees whenever the division is exact.
pub fn conv_out_dim(x: &Expr, k: u64, stride: u64, pad: u64) -> Expr {
    let numer = x.clone() + Expr::from(2 * pad) - Expr::from(k);
    if let Some(c) = numer.as_const() {
        let n = c.num() / c.den(); // c ≥ 0 for any valid window
        return Expr::int(n / stride as i128 + 1);
    }
    numer * Expr::rat(1, stride as i128) + Expr::one()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{DType, TensorId, TensorKind};
    use symath::Bindings;

    fn tensor(name: &str, dims: Vec<Expr>) -> Tensor {
        Tensor {
            id: TensorId(0),
            name: name.into(),
            shape: Shape(dims),
            dtype: DType::F32,
            kind: TensorKind::Activation,
        }
    }

    #[test]
    fn matmul_flops_are_2mkn() {
        let a = tensor("a", vec![Expr::int(8), Expr::int(16)]);
        let b = tensor("b", vec![Expr::int(16), Expr::int(32)]);
        let c = tensor("c", vec![Expr::int(8), Expr::int(32)]);
        let f = op_flops(
            &OpKind::MatMul {
                ta: false,
                tb: false,
            },
            &[&a, &b],
            &[&c],
        );
        assert_eq!(f, Expr::int(2 * 8 * 16 * 32));
    }

    #[test]
    fn matmul_transposed_contraction_dim() {
        // Aᵀ(k×m) with stored shape [16, 8]: contraction dim is dim(0).
        let a = tensor("a", vec![Expr::int(16), Expr::int(8)]);
        let b = tensor("b", vec![Expr::int(16), Expr::int(32)]);
        let c = tensor("c", vec![Expr::int(8), Expr::int(32)]);
        let f = op_flops(
            &OpKind::MatMul {
                ta: true,
                tb: false,
            },
            &[&a, &b],
            &[&c],
        );
        assert_eq!(f, Expr::int(2 * 8 * 16 * 32));
    }

    #[test]
    fn conv_flops_count_kernel_volume() {
        let x = tensor(
            "x",
            vec![Expr::int(2), Expr::int(3), Expr::int(8), Expr::int(8)],
        );
        let w = tensor(
            "w",
            vec![Expr::int(4), Expr::int(3), Expr::int(3), Expr::int(3)],
        );
        let y = tensor(
            "y",
            vec![Expr::int(2), Expr::int(4), Expr::int(8), Expr::int(8)],
        );
        let f = op_flops(
            &OpKind::Conv2d {
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
            },
            &[&x, &w],
            &[&y],
        );
        // 2 · (2·4·8·8) · 3·3·3
        assert_eq!(f, Expr::int(2 * (2 * 4 * 8 * 8) * 27));
    }

    #[test]
    fn gather_reads_rows_not_table() {
        let table = tensor("table", vec![Expr::int(10_000), Expr::int(64)]);
        let idx = {
            let mut t = tensor("idx", vec![Expr::int(4), Expr::int(8)]);
            t.dtype = DType::I32;
            t
        };
        let out = tensor("out", vec![Expr::int(4), Expr::int(8), Expr::int(64)]);
        let (read, written) = op_bytes(&OpKind::EmbeddingGather, &[&table, &idx], &[&out]);
        let out_bytes = 4u64 * 8 * 64 * 4;
        let idx_bytes = 4u64 * 8 * 4;
        assert_eq!(
            read.eval(&Bindings::new()).unwrap(),
            (out_bytes + idx_bytes) as f64
        );
        assert_eq!(written.eval(&Bindings::new()).unwrap(), out_bytes as f64);
        assert!(op_flops(&OpKind::EmbeddingGather, &[&table, &idx], &[&out]).is_zero());
    }

    #[test]
    fn reshape_is_free() {
        let x = tensor("x", vec![Expr::int(6)]);
        let y = tensor("y", vec![Expr::int(2), Expr::int(3)]);
        let (r, w) = op_bytes(&OpKind::Reshape, &[&x], &[&y]);
        assert!(r.is_zero() && w.is_zero());
        assert!(op_flops(&OpKind::Reshape, &[&x], &[&y]).is_zero());
    }

    #[test]
    fn sgd_update_reads_twice_writes_once() {
        let w = tensor("w", vec![Expr::int(100)]);
        let g = tensor("g", vec![Expr::int(100)]);
        let (r, wr) = op_bytes(&OpKind::SgdUpdate, &[&w, &g], &[]);
        assert_eq!(r.eval(&Bindings::new()).unwrap(), 800.0);
        assert_eq!(wr.eval(&Bindings::new()).unwrap(), 400.0);
        assert_eq!(
            op_flops(&OpKind::SgdUpdate, &[&w, &g], &[])
                .eval(&Bindings::new())
                .unwrap(),
            200.0
        );
    }

    #[test]
    fn conv_out_dim_formula() {
        let x = Expr::int(224);
        // 7×7 stride-2 pad-3 stem: (224 + 6 − 7)/2 + 1 = 112 … with exact
        // rational math (223/2 + 1 = 112.5) TF floors; our models only use
        // divisible configurations, checked here with a divisible case.
        let d = conv_out_dim(&Expr::int(226), 3, 1, 0);
        assert_eq!(d, Expr::int(224));
        let s = conv_out_dim(&x, 2, 2, 0);
        assert_eq!(s, Expr::int(112));
    }

    #[test]
    fn addn_flops_scale_with_operand_count() {
        let a = tensor("a", vec![Expr::int(10)]);
        let b = tensor("b", vec![Expr::int(10)]);
        let c = tensor("c", vec![Expr::int(10)]);
        let out = tensor("o", vec![Expr::int(10)]);
        let f = op_flops(&OpKind::AddN, &[&a, &b, &c], &[&out]);
        assert_eq!(f, Expr::int(20));
    }

    #[test]
    fn batch_matmul_shape_inference() {
        let a = Shape::from([Expr::sym("op_b"), Expr::int(8), Expr::int(16)]);
        let b = Shape::from([Expr::sym("op_b"), Expr::int(16), Expr::int(4)]);
        let out = infer_matmul_shape(
            &OpKind::BatchMatMul {
                ta: false,
                tb: false,
            },
            &a,
            &b,
        );
        assert_eq!(
            out,
            Shape::from([Expr::sym("op_b"), Expr::int(8), Expr::int(4)])
        );
    }
}
