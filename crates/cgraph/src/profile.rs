//! TFprof-style per-op cost attribution.
//!
//! [`Graph::profile`] evaluates every op's algorithmic FLOPs and bytes under
//! a concrete [`Bindings`], yielding an [`OpProfile`] that can be grouped by
//! op kind, training phase, or model layer (name prefix), rendered as a
//! top-K table, and cross-checked against [`Graph::stats`] totals.

use std::collections::HashMap;

use symath::{Bindings, UnboundSymbol};

use crate::graph::Graph;
use crate::op::{OpId, OpKind, Phase};
use crate::stats::NumericStats;

/// Evaluated cost of a single op.
#[derive(Clone, Debug)]
pub struct OpCost {
    /// The op's id in its graph.
    pub op: OpId,
    /// Op name (unique within the graph).
    pub name: String,
    /// Short label for the op kind, e.g. `"MatMul"`.
    pub kind: &'static str,
    /// Training phase.
    pub phase: Phase,
    /// Algorithmic FLOPs.
    pub flops: f64,
    /// Algorithmic bytes read.
    pub bytes_read: f64,
    /// Algorithmic bytes written.
    pub bytes_written: f64,
    /// Bytes of the op's output tensors (live footprint contribution).
    pub out_bytes: f64,
}

impl OpCost {
    /// Total algorithmic bytes accessed (read + written).
    pub fn bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Operational intensity FLOP/B (0 for pure data movement).
    pub fn operational_intensity(&self) -> f64 {
        let b = self.bytes();
        if b > 0.0 {
            self.flops / b
        } else {
            0.0
        }
    }
}

/// Aggregated cost of a group of ops (one kind, phase, or layer).
#[derive(Clone, Debug)]
pub struct CostGroup {
    /// Group key (kind label, phase label, or layer prefix).
    pub key: String,
    /// Number of ops in the group.
    pub count: usize,
    /// Summed FLOPs.
    pub flops: f64,
    /// Summed bytes (read + written).
    pub bytes: f64,
}

/// Per-op cost attribution for a graph under concrete bindings.
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// Graph name.
    pub graph: String,
    /// Per-op costs, in the graph's (topological) op order.
    pub ops: Vec<OpCost>,
    /// Whole-graph totals from [`Graph::stats`], evaluated under the same
    /// bindings — the reference the per-op costs must sum to.
    pub totals: NumericStats,
}

impl OpProfile {
    /// Ops sorted by descending FLOPs, truncated to `k`.
    pub fn top_by_flops(&self, k: usize) -> Vec<&OpCost> {
        let mut sorted: Vec<&OpCost> = self.ops.iter().collect();
        sorted.sort_by(|a, b| {
            b.flops
                .total_cmp(&a.flops)
                .then_with(|| a.name.cmp(&b.name))
        });
        sorted.truncate(k);
        sorted
    }

    /// Ops sorted by descending bytes accessed, truncated to `k`.
    pub fn top_by_bytes(&self, k: usize) -> Vec<&OpCost> {
        let mut sorted: Vec<&OpCost> = self.ops.iter().collect();
        sorted.sort_by(|a, b| {
            b.bytes()
                .total_cmp(&a.bytes())
                .then_with(|| a.name.cmp(&b.name))
        });
        sorted.truncate(k);
        sorted
    }

    fn group_by(&self, key_of: impl Fn(&OpCost) -> String) -> Vec<CostGroup> {
        let mut groups: HashMap<String, CostGroup> = HashMap::new();
        for op in &self.ops {
            let key = key_of(op);
            let entry = groups.entry(key.clone()).or_insert(CostGroup {
                key,
                count: 0,
                flops: 0.0,
                bytes: 0.0,
            });
            entry.count += 1;
            entry.flops += op.flops;
            entry.bytes += op.bytes();
        }
        let mut out: Vec<CostGroup> = groups.into_values().collect();
        out.sort_by(|a, b| b.flops.total_cmp(&a.flops).then_with(|| a.key.cmp(&b.key)));
        out
    }

    /// Aggregate by op kind, sorted by descending FLOPs.
    pub fn by_kind(&self) -> Vec<CostGroup> {
        self.group_by(|op| op.kind.to_string())
    }

    /// Aggregate by training phase, sorted by descending FLOPs.
    pub fn by_phase(&self) -> Vec<CostGroup> {
        self.group_by(|op| phase_label(op.phase).to_string())
    }

    /// Aggregate by model layer, sorted by descending FLOPs. The layer key is
    /// the op name's leading dot-component after stripping the autodiff
    /// prefixes (`bwd_`, `sgd_`, `acc_grad_`), so `bwd_lstm0.t3.gx_dA`
    /// attributes to `lstm0` alongside its forward op.
    pub fn by_layer(&self) -> Vec<CostGroup> {
        self.group_by(|op| layer_key(&op.name).to_string())
    }

    /// Restrict the profile to forward-phase ops, or `None` if the graph has
    /// no forward-only reading (any backward/update FLOPs in the totals).
    ///
    /// The returned profile's totals are the forward view of the graph
    /// totals re-expanded into [`NumericStats`] (backward/update exactly
    /// zero), so [`check_consistency`](Self::check_consistency) applies to
    /// it unchanged — the consistency gate for inference reports.
    pub fn forward_view(&self) -> Option<OpProfile> {
        let fwd = self.totals.forward_view()?;
        let ops: Vec<OpCost> = self
            .ops
            .iter()
            .filter(|o| o.phase == Phase::Forward)
            .cloned()
            .collect();
        Some(OpProfile {
            graph: self.graph.clone(),
            ops,
            totals: NumericStats {
                flops: fwd.flops,
                flops_forward: fwd.flops,
                flops_backward: 0.0,
                flops_update: 0.0,
                bytes: fwd.bytes,
                bytes_read: fwd.bytes_read,
                bytes_written: fwd.bytes_written,
                params: fwd.params,
                io: fwd.io,
            },
        })
    }

    /// Verify that per-op costs sum to the [`Graph::stats`] totals within
    /// `rel_tol` relative error; returns a description of the first mismatch.
    pub fn check_consistency(&self, rel_tol: f64) -> Result<(), String> {
        let sum = |f: &dyn Fn(&OpCost) -> f64| self.ops.iter().map(f).sum::<f64>();
        let phase_flops = |p: Phase| {
            self.ops
                .iter()
                .filter(|o| o.phase == p)
                .map(|o| o.flops)
                .sum::<f64>()
        };
        let checks: [(&str, f64, f64); 7] = [
            ("flops", sum(&|o| o.flops), self.totals.flops),
            (
                "flops_forward",
                phase_flops(Phase::Forward),
                self.totals.flops_forward,
            ),
            (
                "flops_backward",
                phase_flops(Phase::Backward),
                self.totals.flops_backward,
            ),
            (
                "flops_update",
                phase_flops(Phase::Update),
                self.totals.flops_update,
            ),
            ("bytes_read", sum(&|o| o.bytes_read), self.totals.bytes_read),
            (
                "bytes_written",
                sum(&|o| o.bytes_written),
                self.totals.bytes_written,
            ),
            ("bytes", sum(&|o| o.bytes()), self.totals.bytes),
        ];
        for (what, got, want) in checks {
            let scale = want.abs().max(1.0);
            if (got - want).abs() > rel_tol * scale {
                return Err(format!(
                    "per-op {what} sum {got:.6e} != graph total {want:.6e} \
                     (rel err {:.3e})",
                    (got - want).abs() / scale
                ));
            }
        }
        Ok(())
    }

    /// Render the top-`k` ops by FLOPs as a TFprof-style text table with
    /// cumulative percentages.
    pub fn render_top(&self, k: usize) -> String {
        let total_flops = self.totals.flops.max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "profile {}: {} ops, {:.3e} FLOPs, {:.3e} bytes\n",
            self.graph,
            self.ops.len(),
            self.totals.flops,
            self.totals.bytes
        ));
        out.push_str(&format!(
            "{:<40} {:<18} {:<8} {:>10} {:>7} {:>7} {:>10} {:>8}\n",
            "op", "kind", "phase", "flops", "%", "cum%", "bytes", "FLOP/B"
        ));
        let mut cumulative = 0.0;
        for op in self.top_by_flops(k) {
            let pct = 100.0 * op.flops / total_flops;
            cumulative += pct;
            out.push_str(&format!(
                "{:<40} {:<18} {:<8} {:>10} {:>6.1}% {:>6.1}% {:>10} {:>8.1}\n",
                clip(&op.name, 40),
                op.kind,
                phase_label(op.phase),
                sig3(op.flops),
                pct,
                cumulative,
                sig3(op.bytes()),
                op.operational_intensity(),
            ));
        }
        out
    }

    /// Render grouped costs (from [`by_kind`](Self::by_kind) etc.) as a text
    /// table with percentage-of-total columns.
    pub fn render_groups(&self, title: &str, groups: &[CostGroup]) -> String {
        let total_flops = self.totals.flops.max(f64::MIN_POSITIVE);
        let total_bytes = self.totals.bytes.max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>6} {:>10} {:>7} {:>10} {:>7}\n",
            title, "ops", "flops", "%", "bytes", "%"
        ));
        for g in groups {
            out.push_str(&format!(
                "{:<24} {:>6} {:>10} {:>6.1}% {:>10} {:>6.1}%\n",
                clip(&g.key, 24),
                g.count,
                sig3(g.flops),
                100.0 * g.flops / total_flops,
                sig3(g.bytes),
                100.0 * g.bytes / total_bytes,
            ));
        }
        out
    }
}

/// Layer attribution key for an op name: strip autodiff prefixes, then take
/// the leading dot-component; a dot-free backward name also drops its
/// gradient suffix (`_dA`, `_dBias`, …) so `bwd_out_dA` groups with `out`.
pub fn layer_key(name: &str) -> &str {
    let stripped = name
        .strip_prefix("bwd_")
        .or_else(|| name.strip_prefix("sgd_"))
        .or_else(|| name.strip_prefix("acc_grad_"));
    let base = stripped.unwrap_or(name);
    match base.split('.').next() {
        Some(first) if first.len() < base.len() => first,
        _ => match (stripped, base.rfind("_d")) {
            (Some(_), Some(i)) if i > 0 && base[i + 2..].chars().all(char::is_alphanumeric) => {
                &base[..i]
            }
            _ => base,
        },
    }
}

/// Human-readable phase label.
pub fn phase_label(phase: Phase) -> &'static str {
    match phase {
        Phase::Forward => "fwd",
        Phase::Backward => "bwd",
        Phase::Update => "update",
    }
}

/// Short stable label for an op kind (variant name without payload).
pub fn kind_label(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::MatMul { .. } => "MatMul",
        OpKind::BatchMatMul { .. } => "BatchMatMul",
        OpKind::Conv2d { .. } => "Conv2d",
        OpKind::Pointwise(_) => "Pointwise",
        OpKind::BiasAdd => "BiasAdd",
        OpKind::EmbeddingGather => "EmbeddingGather",
        OpKind::EmbeddingScatterAdd => "EmbeddingScatterAdd",
        OpKind::Softmax => "Softmax",
        OpKind::BatchNorm => "BatchNorm",
        OpKind::Pool { .. } => "Pool",
        OpKind::Reduce(_) => "Reduce",
        OpKind::Concat => "Concat",
        OpKind::Split => "Split",
        OpKind::Transpose => "Transpose",
        OpKind::Reshape => "Reshape",
        OpKind::CrossEntropy => "CrossEntropy",
        OpKind::AddN => "AddN",
        OpKind::SgdUpdate => "SgdUpdate",
        OpKind::Conv2dBackpropInput { .. } => "Conv2dBackpropInput",
        OpKind::Conv2dBackpropFilter { .. } => "Conv2dBackpropFilter",
        OpKind::PointwiseGrad(_) => "PointwiseGrad",
        OpKind::SoftmaxGrad => "SoftmaxGrad",
        OpKind::BatchNormGrad => "BatchNormGrad",
        OpKind::PoolGrad { .. } => "PoolGrad",
        OpKind::Broadcast => "Broadcast",
        OpKind::CrossEntropyGrad => "CrossEntropyGrad",
        OpKind::MomentumUpdate => "MomentumUpdate",
        OpKind::AdamUpdate => "AdamUpdate",
    }
}

fn clip(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("…{}", &s[s.len() - (max - 1)..])
    }
}

fn sig3(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if v.abs() >= 1e4 {
        format!("{v:.2e}")
    } else {
        format!("{v:.0}")
    }
}

impl Graph {
    /// Evaluate every op's algorithmic cost under `bindings`, returning an
    /// [`OpProfile`] whose per-op sums are consistent with
    /// [`Graph::stats`] (see [`OpProfile::check_consistency`]).
    pub fn profile(&self, bindings: &Bindings) -> Result<OpProfile, UnboundSymbol> {
        let _span = obs::span("cgraph.profile")
            .with_arg("graph", self.name.as_str())
            .with_arg("ops", self.ops().len());
        let mut ops = Vec::with_capacity(self.ops().len());
        for op in self.ops() {
            let flops = self.op_flops(op).eval(bindings)?;
            let (read, written) = self.op_bytes(op);
            let out_bytes: f64 = op
                .outputs
                .iter()
                .map(|&t| self.tensor(t).bytes().eval(bindings))
                .sum::<Result<f64, _>>()?;
            ops.push(OpCost {
                op: op.id(),
                name: op.name.clone(),
                kind: kind_label(&op.kind),
                phase: op.phase,
                flops,
                bytes_read: read.eval(bindings)?,
                bytes_written: written.eval(bindings)?,
                out_bytes,
            });
        }
        Ok(OpProfile {
            graph: self.name.clone(),
            ops,
            totals: self.stats().eval(bindings)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autodiff::build_training_step;
    use crate::op::PointwiseFn;
    use crate::tensor::DType;
    use symath::{Bindings, Expr};

    fn trained_mlp() -> Graph {
        let mut g = Graph::new("pf_mlp");
        let b = Expr::sym("pf_b");
        let x = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let w1 = g.weight("enc.w1", [Expr::int(64), Expr::int(128)]).unwrap();
        let h = g.matmul("enc.fc1", x, w1, false, false).unwrap();
        let h = g.unary("enc.relu", PointwiseFn::Relu, h).unwrap();
        let w2 = g
            .weight("head.w2", [Expr::int(128), Expr::int(10)])
            .unwrap();
        let logits = g.matmul("head.fc2", h, w2, false, false).unwrap();
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", logits, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        g
    }

    fn bindings() -> Bindings {
        Bindings::new().with("pf_b", 32.0)
    }

    #[test]
    fn profile_sums_match_stats() {
        let g = trained_mlp();
        let profile = g.profile(&bindings()).unwrap();
        profile.check_consistency(1e-9).unwrap();
    }

    #[test]
    fn top_by_flops_is_sorted_and_truncated() {
        let g = trained_mlp();
        let profile = g.profile(&bindings()).unwrap();
        let top = profile.top_by_flops(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].flops >= top[1].flops && top[1].flops >= top[2].flops);
        // Matmuls dominate a dense net.
        assert!(top[0].kind.contains("MatMul"));
    }

    #[test]
    fn groups_cover_all_flops() {
        let g = trained_mlp();
        let profile = g.profile(&bindings()).unwrap();
        for groups in [profile.by_kind(), profile.by_phase(), profile.by_layer()] {
            let total: f64 = groups.iter().map(|g| g.flops).sum();
            assert!((total - profile.totals.flops).abs() <= 1e-9 * profile.totals.flops);
            let count: usize = groups.iter().map(|g| g.count).sum();
            assert_eq!(count, profile.ops.len());
        }
    }

    #[test]
    fn layer_key_strips_autodiff_prefixes() {
        assert_eq!(layer_key("enc.fc1"), "enc");
        assert_eq!(layer_key("bwd_enc.fc1_dA"), "enc");
        assert_eq!(layer_key("sgd_enc.w1"), "enc");
        assert_eq!(layer_key("acc_grad_enc.h.3"), "enc");
        assert_eq!(layer_key("loss"), "loss");
        // Dot-free backward names drop the gradient suffix, forward names
        // keep theirs.
        assert_eq!(layer_key("bwd_out_dA"), "out");
        assert_eq!(layer_key("bwd_out_bias_dBias"), "out_bias");
        assert_eq!(layer_key("bwd_loss"), "loss");
        assert_eq!(layer_key("out_dated"), "out_dated");
    }

    #[test]
    fn layer_groups_unify_forward_and_backward() {
        let g = trained_mlp();
        let profile = g.profile(&bindings()).unwrap();
        let layers = profile.by_layer();
        let enc = layers.iter().find(|g| g.key == "enc").unwrap();
        // Forward matmul + relu, their backward ops, and the sgd updates all
        // fold into the one `enc` group.
        assert!(enc.count > 3);
    }

    #[test]
    fn phase_groups_match_stats_split() {
        let g = trained_mlp();
        let profile = g.profile(&bindings()).unwrap();
        let phases = profile.by_phase();
        let flops_of = |label: &str| {
            phases
                .iter()
                .find(|g| g.key == label)
                .map(|g| g.flops)
                .unwrap_or(0.0)
        };
        assert!((flops_of("fwd") - profile.totals.flops_forward).abs() < 1e-9);
        assert!((flops_of("bwd") - profile.totals.flops_backward).abs() < 1e-9);
        assert!((flops_of("update") - profile.totals.flops_update).abs() < 1e-9);
        assert!(flops_of("update") > 0.0, "training graph has update ops");
    }

    #[test]
    fn render_top_mentions_dominant_op() {
        let g = trained_mlp();
        let profile = g.profile(&bindings()).unwrap();
        let table = profile.render_top(5);
        assert!(table.contains("op"));
        assert!(table.contains("cum%"));
        assert!(table.contains("MatMul"));
        let groups = profile.render_groups("kind", &profile.by_kind());
        assert!(groups.contains("MatMul"));
    }

    #[test]
    fn unbound_symbol_is_reported() {
        let g = trained_mlp();
        assert!(g.profile(&Bindings::new()).is_err());
    }

    #[test]
    fn forward_view_passes_consistency_on_inference_graph() {
        let mut g = Graph::new("pf_fwd");
        let b = Expr::sym("pf_b");
        let x = g.input("x", [b, Expr::int(64)], DType::F32).unwrap();
        let w1 = g.weight("enc.w1", [Expr::int(64), Expr::int(128)]).unwrap();
        let h = g.matmul("enc.fc1", x, w1, false, false).unwrap();
        let _ = g.unary("enc.relu", PointwiseFn::Relu, h).unwrap();
        let profile = g.profile(&bindings()).unwrap();
        let fwd = profile.forward_view().expect("graph is forward-only");
        fwd.check_consistency(1e-9).unwrap();
        assert_eq!(fwd.ops.len(), profile.ops.len());
        assert_eq!(fwd.totals.flops, profile.totals.flops);
        assert_eq!(fwd.totals.flops_backward, 0.0);
        assert_eq!(fwd.totals.flops_update, 0.0);
    }

    #[test]
    fn forward_view_refuses_training_profile() {
        let g = trained_mlp();
        let profile = g.profile(&bindings()).unwrap();
        assert!(
            profile.forward_view().is_none(),
            "training phases must not leak into an inference report"
        );
    }
}
