//! Minimal memory-footprint estimation (paper §2.1, §4.5).
//!
//! The paper defines *algorithmic memory footprint* as the minimum over all
//! correct topological traversals of the maximum memory needed for all
//! active tensors at any point of the traversal. Finding the true minimum is
//! NP-hard in general; like the Catamount artifact we estimate it by
//! simulating traversals:
//!
//! * [`Scheduler::ProgramOrder`] replays the construction order (what an
//!   eager framework would do), and
//! * [`Scheduler::GreedyMinPeak`] at each step runs the ready op that
//!   minimizes the net change in live memory — a strong practical baseline
//!   that the ablation bench compares against program order.
//!
//! Weights and weight-gradients are persistent for the whole step;
//! activations and gradients are freed once their last consumer has run.

use symath::{Bindings, UnboundSymbol};

use crate::graph::Graph;
use crate::op::{OpId, OpKind, PointwiseFn};

/// Whether ops may overwrite a dying input instead of allocating a fresh
/// output (paper §4.5: "Tensorflow optimizes to perform some ops on tensors
/// in-place rather than allocating separate output tensors", which is why
/// the paper's topological estimates slightly overestimate TF).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InPlacePolicy {
    /// Every op allocates fresh outputs (the paper's conservative default).
    #[default]
    Never,
    /// Elementwise ops whose output matches a same-sized input that dies at
    /// this op reuse its allocation.
    Elementwise,
}

/// Traversal policy for the footprint simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheduler {
    /// Execute ops in construction order.
    ProgramOrder,
    /// Greedily execute the ready op with the smallest net memory delta.
    /// Strong on graphs with reclaimable fan-out, but short-sighted
    /// schedules can lose to program order (see the scheduler ablation).
    GreedyMinPeak,
    /// Run every heuristic and report the best (smallest-peak) traversal —
    /// the closest estimate of the paper's minimum-over-traversals
    /// definition.
    Best,
}

/// Result of a footprint simulation.
#[derive(Clone, Debug)]
pub struct FootprintReport {
    /// Peak bytes live at any point of the traversal.
    pub peak_bytes: u64,
    /// Bytes that stay allocated for the entire step (weights + weight
    /// gradients).
    pub persistent_bytes: u64,
    /// The op order that achieved `peak_bytes`.
    pub schedule: Vec<OpId>,
}

struct Sim<'g> {
    graph: &'g Graph,
    size: Vec<u64>,
    refcount: Vec<usize>,
    live: Vec<bool>,
    mem: u64,
    peak: u64,
    in_place: InPlacePolicy,
}

/// Elementwise op kinds eligible for in-place execution: output overwrites
/// an input of identical element count.
fn in_place_eligible(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Pointwise(
            PointwiseFn::Add
                | PointwiseFn::Sub
                | PointwiseFn::Mul
                | PointwiseFn::Relu
                | PointwiseFn::Sigmoid
                | PointwiseFn::Tanh
                | PointwiseFn::Exp
                | PointwiseFn::Scale
                | PointwiseFn::Copy
        ) | OpKind::BiasAdd
            | OpKind::PointwiseGrad(_)
            | OpKind::SoftmaxGrad
            | OpKind::Softmax
    )
}

impl<'g> Sim<'g> {
    fn new(
        graph: &'g Graph,
        bindings: &Bindings,
        in_place: InPlacePolicy,
    ) -> Result<Sim<'g>, UnboundSymbol> {
        Ok(Sim::with_sizes(
            graph,
            tensor_sizes(graph, bindings)?,
            in_place,
        ))
    }

    /// Build a simulation from precomputed per-tensor byte sizes (indexed by
    /// [`TensorId::index`](crate::tensor::TensorId)). Lets callers evaluate
    /// sizes once and share them across schedulers or sweep points.
    fn with_sizes(graph: &'g Graph, size: Vec<u64>, in_place: InPlacePolicy) -> Sim<'g> {
        let n = graph.tensors().len();
        debug_assert_eq!(size.len(), n);
        let refcount: Vec<usize> = graph
            .tensors()
            .iter()
            .map(|t| graph.consumers(t.id()).len())
            .collect();
        let mut sim = Sim {
            graph,
            size,
            refcount,
            live: vec![false; n],
            mem: 0,
            peak: 0,
            in_place,
        };
        // Source tensors (no producer) are live from the start: weights are
        // persistent, inputs are freed after their last consumer.
        for t in graph.tensors() {
            if graph.producer(t.id()).is_none() {
                sim.alloc(t.id().index());
            }
        }
        sim.peak = sim.mem;
        sim
    }

    fn alloc(&mut self, idx: usize) {
        debug_assert!(!self.live[idx]);
        self.live[idx] = true;
        self.mem += self.size[idx];
    }

    fn free(&mut self, idx: usize) {
        debug_assert!(self.live[idx]);
        self.live[idx] = false;
        self.mem -= self.size[idx];
    }

    fn persistent(&self, idx: usize) -> bool {
        self.graph.tensors()[idx].kind.is_persistent()
    }

    /// Whether `op` executes in place under the active policy: a single
    /// output whose bytes match a dying, non-persistent input.
    fn runs_in_place(&self, op: OpId) -> bool {
        if self.in_place != InPlacePolicy::Elementwise {
            return false;
        }
        let op = self.graph.op(op);
        if op.outputs.len() != 1 || !in_place_eligible(&op.kind) {
            return false;
        }
        let out_size = self.size[op.outputs[0].index()];
        op.inputs.iter().any(|&i| {
            let idx = i.index();
            self.size[idx] == out_size
                && self.refcount[idx] == 1
                && self.live[idx]
                && !self.persistent(idx)
        })
    }

    /// Bytes the op must allocate on execution (zero transient growth for
    /// in-place ops).
    fn alloc_bytes(&self, op_id: OpId) -> u64 {
        if self.runs_in_place(op_id) {
            return 0;
        }
        let op = self.graph.op(op_id);
        op.outputs.iter().map(|&o| self.size[o.index()]).sum()
    }

    /// Net memory delta of running `op` now (allocations minus frees),
    /// without mutating state.
    fn delta(&self, op: OpId) -> i128 {
        let alloc = self.alloc_bytes(op) as i128;
        let op_ref = self.graph.op(op);
        let mut d: i128 = alloc;
        for &o in &op_ref.outputs {
            // Outputs nobody consumes are freed right away unless persistent.
            if self.graph.consumers(o).is_empty() && !self.persistent(o.index()) {
                d -= self.size[o.index()] as i128;
            }
        }
        let in_place = self.runs_in_place(op);
        let mut reused = false;
        let out_size = op_ref
            .outputs
            .first()
            .map(|&o| self.size[o.index()])
            .unwrap_or(0);
        for &i in &op_ref.inputs {
            let idx = i.index();
            if self.refcount[idx] == 1 && !self.persistent(idx) && self.live[idx] {
                // The reused input's storage becomes the output's: it is not
                // freed (once).
                if in_place && !reused && self.size[idx] == out_size {
                    reused = true;
                    continue;
                }
                d -= self.size[idx] as i128;
            }
        }
        d
    }

    /// Peak memory reached *during* `op` (outputs allocated before inputs
    /// can be released).
    fn transient_peak(&self, op: OpId) -> u64 {
        self.mem + self.alloc_bytes(op)
    }

    fn run(&mut self, op_id: OpId) {
        self.peak = self.peak.max(self.transient_peak(op_id));
        let in_place = self.runs_in_place(op_id);
        // Borrow the op through the graph reference (not `self`) so the
        // &mut self bookkeeping below needs no per-op clone of the op.
        let graph = self.graph;
        let op = graph.op(op_id);
        let out_size = op
            .outputs
            .first()
            .map(|&o| self.size[o.index()])
            .unwrap_or(0);
        for &o in &op.outputs {
            self.alloc(o.index());
        }
        if in_place {
            // The output storage is the reused input's: cancel the growth.
            self.mem -= out_size;
        }
        let mut reused = false;
        for &i in &op.inputs {
            let idx = i.index();
            debug_assert!(self.refcount[idx] > 0);
            self.refcount[idx] -= 1;
            if self.refcount[idx] == 0 && !self.persistent(idx) && self.live[idx] {
                if in_place && !reused && self.size[idx] == out_size {
                    // Its bytes live on as the output; mark dead without
                    // releasing memory (already accounted above).
                    reused = true;
                    self.live[idx] = false;
                    continue;
                }
                self.free(idx);
            }
        }
        for &o in &op.outputs {
            let idx = o.index();
            if self.refcount[idx] == 0 && !self.persistent(idx) {
                self.free(idx);
            }
        }
        self.peak = self.peak.max(self.mem);
    }
}

/// A graph compiled once into flat, size-independent adjacency tables for
/// footprint simulation.
///
/// The simulation itself only ever needs operand/consumer index lists and a
/// few per-tensor flags, but walking them through [`Graph`] costs a pointer
/// chase into large `Tensor`/`Op` structs (symbolic shapes, names) per
/// access — cache-hostile at sweep scale, where the same family graph is
/// re-simulated at every grid point with nothing changing but the size
/// table. A `FootprintPlan` extracts the traversal structure once into
/// packed CSR arrays; [`footprint_with_plan`] then prices any number of
/// size vectors against it with tight index arithmetic. Results are
/// identical to simulating the graph directly (the plan is a lossless
/// projection of what the simulation reads — asserted against
/// [`footprint_reference`], which still walks the real graph).
#[derive(Clone, Debug)]
pub struct FootprintPlan {
    name: String,
    /// CSR: input tensor indices per op (occurrences preserved).
    in_off: Vec<u32>,
    in_ids: Vec<u32>,
    /// CSR: output tensor indices per op.
    out_off: Vec<u32>,
    out_ids: Vec<u32>,
    /// CSR: consumer op indices per tensor (one entry per consuming edge).
    cons_off: Vec<u32>,
    cons_ids: Vec<u32>,
    /// Tensor lives for the whole step (weights, optimizer state).
    persistent: Vec<bool>,
    /// Tensor has no producer op (graph input / weight): live from start.
    source: Vec<bool>,
    /// Producer-backed input occurrences per op (initial dependency count).
    init_deps: Vec<u32>,
    /// Op is single-output and of an in-place-eligible kind.
    in_place_ok: Vec<bool>,
}

impl FootprintPlan {
    /// Extract the traversal structure of `graph`.
    pub fn new(graph: &Graph) -> FootprintPlan {
        let tensors = graph.tensors();
        let ops = graph.ops();
        let mut plan = FootprintPlan {
            name: graph.name.clone(),
            in_off: Vec::with_capacity(ops.len() + 1),
            in_ids: Vec::new(),
            out_off: Vec::with_capacity(ops.len() + 1),
            out_ids: Vec::new(),
            cons_off: Vec::with_capacity(tensors.len() + 1),
            cons_ids: Vec::new(),
            persistent: tensors.iter().map(|t| t.kind.is_persistent()).collect(),
            source: tensors
                .iter()
                .map(|t| graph.producer(t.id()).is_none())
                .collect(),
            init_deps: Vec::with_capacity(ops.len()),
            in_place_ok: Vec::with_capacity(ops.len()),
        };
        for op in ops {
            plan.in_off.push(plan.in_ids.len() as u32);
            plan.out_off.push(plan.out_ids.len() as u32);
            plan.in_ids
                .extend(op.inputs.iter().map(|i| i.index() as u32));
            plan.out_ids
                .extend(op.outputs.iter().map(|o| o.index() as u32));
            plan.init_deps.push(
                op.inputs
                    .iter()
                    .filter(|&&i| graph.producer(i).is_some())
                    .count() as u32,
            );
            plan.in_place_ok
                .push(op.outputs.len() == 1 && in_place_eligible(&op.kind));
        }
        plan.in_off.push(plan.in_ids.len() as u32);
        plan.out_off.push(plan.out_ids.len() as u32);
        for t in tensors {
            plan.cons_off.push(plan.cons_ids.len() as u32);
            plan.cons_ids
                .extend(graph.consumers(t.id()).iter().map(|c| c.index() as u32));
        }
        plan.cons_off.push(plan.cons_ids.len() as u32);
        plan
    }

    /// Number of ops in the planned graph.
    pub fn ops(&self) -> usize {
        self.in_off.len() - 1
    }

    /// Number of tensors in the planned graph (the expected size-table
    /// length).
    pub fn tensors(&self) -> usize {
        self.cons_off.len() - 1
    }

    fn inputs(&self, op: usize) -> &[u32] {
        &self.in_ids[self.in_off[op] as usize..self.in_off[op + 1] as usize]
    }

    fn outputs(&self, op: usize) -> &[u32] {
        &self.out_ids[self.out_off[op] as usize..self.out_off[op + 1] as usize]
    }

    fn consumers(&self, t: usize) -> &[u32] {
        &self.cons_ids[self.cons_off[t] as usize..self.cons_off[t + 1] as usize]
    }
}

/// [`Sim`] over a [`FootprintPlan`]: the same simulation semantics,
/// statement for statement, but reading packed index tables instead of graph
/// structs.
struct PlanSim<'p> {
    plan: &'p FootprintPlan,
    size: &'p [u64],
    refcount: Vec<u32>,
    live: Vec<bool>,
    mem: u64,
    peak: u64,
    in_place: InPlacePolicy,
}

impl<'p> PlanSim<'p> {
    fn new(plan: &'p FootprintPlan, size: &'p [u64], in_place: InPlacePolicy) -> PlanSim<'p> {
        let n = plan.tensors();
        debug_assert_eq!(size.len(), n);
        let refcount: Vec<u32> = (0..n)
            .map(|t| plan.cons_off[t + 1] - plan.cons_off[t])
            .collect();
        let mut sim = PlanSim {
            plan,
            size,
            refcount,
            live: vec![false; n],
            mem: 0,
            peak: 0,
            in_place,
        };
        for t in 0..n {
            if plan.source[t] {
                sim.alloc(t);
            }
        }
        sim.peak = sim.mem;
        sim
    }

    fn alloc(&mut self, idx: usize) {
        debug_assert!(!self.live[idx]);
        self.live[idx] = true;
        self.mem += self.size[idx];
    }

    fn free(&mut self, idx: usize) {
        debug_assert!(self.live[idx]);
        self.live[idx] = false;
        self.mem -= self.size[idx];
    }

    fn runs_in_place(&self, op: usize) -> bool {
        if self.in_place != InPlacePolicy::Elementwise || !self.plan.in_place_ok[op] {
            return false;
        }
        let out_size = self.size[self.plan.outputs(op)[0] as usize];
        self.plan.inputs(op).iter().any(|&i| {
            let idx = i as usize;
            self.size[idx] == out_size
                && self.refcount[idx] == 1
                && self.live[idx]
                && !self.plan.persistent[idx]
        })
    }

    fn alloc_bytes(&self, op: usize) -> u64 {
        if self.runs_in_place(op) {
            return 0;
        }
        self.plan
            .outputs(op)
            .iter()
            .map(|&o| self.size[o as usize])
            .sum()
    }

    fn delta(&self, op: usize) -> i128 {
        let alloc = self.alloc_bytes(op) as i128;
        let mut d: i128 = alloc;
        for &o in self.plan.outputs(op) {
            let oi = o as usize;
            if self.plan.consumers(oi).is_empty() && !self.plan.persistent[oi] {
                d -= self.size[oi] as i128;
            }
        }
        let in_place = self.runs_in_place(op);
        let mut reused = false;
        let out_size = self
            .plan
            .outputs(op)
            .first()
            .map(|&o| self.size[o as usize])
            .unwrap_or(0);
        for &i in self.plan.inputs(op) {
            let idx = i as usize;
            if self.refcount[idx] == 1 && !self.plan.persistent[idx] && self.live[idx] {
                if in_place && !reused && self.size[idx] == out_size {
                    reused = true;
                    continue;
                }
                d -= self.size[idx] as i128;
            }
        }
        d
    }

    fn run(&mut self, op: usize) {
        self.peak = self.peak.max(self.mem + self.alloc_bytes(op));
        let in_place = self.runs_in_place(op);
        let out_size = self
            .plan
            .outputs(op)
            .first()
            .map(|&o| self.size[o as usize])
            .unwrap_or(0);
        for &o in self.plan.outputs(op) {
            self.alloc(o as usize);
        }
        if in_place {
            self.mem -= out_size;
        }
        let mut reused = false;
        for &i in self.plan.inputs(op) {
            let idx = i as usize;
            debug_assert!(self.refcount[idx] > 0);
            self.refcount[idx] -= 1;
            if self.refcount[idx] == 0 && !self.plan.persistent[idx] && self.live[idx] {
                if in_place && !reused && self.size[idx] == out_size {
                    reused = true;
                    self.live[idx] = false;
                    continue;
                }
                self.free(idx);
            }
        }
        for &o in self.plan.outputs(op) {
            let oi = o as usize;
            if self.refcount[oi] == 0 && !self.plan.persistent[oi] {
                self.free(oi);
            }
        }
        self.peak = self.peak.max(self.mem);
    }
}

/// Simulate a traversal of `graph` under `bindings` and report the footprint
/// (conservative: every op allocates fresh outputs).
pub fn footprint(
    graph: &Graph,
    bindings: &Bindings,
    scheduler: Scheduler,
) -> Result<FootprintReport, UnboundSymbol> {
    footprint_with(graph, bindings, scheduler, InPlacePolicy::Never)
}

/// [`footprint`] with an explicit in-place policy.
pub fn footprint_with(
    graph: &Graph,
    bindings: &Bindings,
    scheduler: Scheduler,
    in_place: InPlacePolicy,
) -> Result<FootprintReport, UnboundSymbol> {
    let sizes = tensor_sizes(graph, bindings)?;
    Ok(footprint_with_sizes(graph, &sizes, scheduler, in_place))
}

/// Evaluate every tensor's byte size under `bindings`, indexed by
/// [`TensorId::index`](crate::tensor::TensorId). The exact per-tensor
/// rounding the simulation uses; precompute once to share across schedulers
/// or sweep points.
pub fn tensor_sizes(graph: &Graph, bindings: &Bindings) -> Result<Vec<u64>, UnboundSymbol> {
    graph
        .tensors()
        .iter()
        .map(|t| t.bytes_u64(bindings))
        .collect()
}

/// [`footprint_with`] over precomputed tensor sizes (no symbolic
/// evaluation). `Scheduler::Best` runs both heuristics against the same size
/// table instead of re-evaluating it.
///
/// Builds a throwaway [`FootprintPlan`]; callers pricing many size vectors
/// against one graph should build the plan once and use
/// [`footprint_with_plan`].
pub fn footprint_with_sizes(
    graph: &Graph,
    sizes: &[u64],
    scheduler: Scheduler,
    in_place: InPlacePolicy,
) -> FootprintReport {
    footprint_with_plan(&FootprintPlan::new(graph), sizes, scheduler, in_place)
}

/// Simulate a traversal of a precompiled plan against one size table.
/// Identical results to [`footprint_with_sizes`] on the planned graph.
pub fn footprint_with_plan(
    plan: &FootprintPlan,
    sizes: &[u64],
    scheduler: Scheduler,
    in_place: InPlacePolicy,
) -> FootprintReport {
    let _span = obs::span("cgraph.footprint")
        .with_arg("graph", plan.name.as_str())
        .with_arg("scheduler", format!("{scheduler:?}"))
        .with_arg("ops", plan.ops());
    if scheduler == Scheduler::Best {
        let program = footprint_with_plan(plan, sizes, Scheduler::ProgramOrder, in_place);
        let greedy = footprint_with_plan(plan, sizes, Scheduler::GreedyMinPeak, in_place);
        return if greedy.peak_bytes <= program.peak_bytes {
            greedy
        } else {
            program
        };
    }
    let mut sim = PlanSim::new(plan, sizes, in_place);
    let persistent_bytes: u64 = (0..plan.tensors())
        .filter(|&t| plan.persistent[t])
        .map(|t| sizes[t])
        .sum();

    let schedule = match scheduler {
        Scheduler::ProgramOrder => {
            let order: Vec<OpId> = (0..plan.ops() as u32).map(OpId).collect();
            for op in 0..plan.ops() {
                sim.run(op);
            }
            order
        }
        Scheduler::GreedyMinPeak => greedy_schedule(plan, &mut sim),
        Scheduler::Best => unreachable!("handled above"),
    };

    FootprintReport {
        peak_bytes: sim.peak,
        persistent_bytes,
        schedule,
    }
}

/// The pre-optimization reference simulation: the naive greedy selection
/// loop that rescans every ready op per step. Kept as the brute-force
/// oracle for the scheduler-equivalence tests and the sweep benchmark
/// baseline; [`footprint`] produces the identical schedule faster.
pub fn footprint_reference(
    graph: &Graph,
    bindings: &Bindings,
    scheduler: Scheduler,
) -> Result<FootprintReport, UnboundSymbol> {
    let in_place = InPlacePolicy::Never;
    if scheduler == Scheduler::Best {
        let program = footprint_reference(graph, bindings, Scheduler::ProgramOrder)?;
        let greedy = footprint_reference(graph, bindings, Scheduler::GreedyMinPeak)?;
        return Ok(if greedy.peak_bytes <= program.peak_bytes {
            greedy
        } else {
            program
        });
    }
    let mut sim = Sim::new(graph, bindings, in_place)?;
    let persistent_bytes: u64 = graph
        .tensors()
        .iter()
        .filter(|t| t.kind.is_persistent())
        .map(|t| sim.size[t.id().index()])
        .sum();
    let schedule = match scheduler {
        Scheduler::ProgramOrder => {
            let order: Vec<OpId> = graph.ops().iter().map(|o| o.id()).collect();
            for &op in &order {
                sim.run(op);
            }
            order
        }
        Scheduler::GreedyMinPeak => greedy_schedule_reference(graph, &mut sim),
        Scheduler::Best => unreachable!("handled above"),
    };
    Ok(FootprintReport {
        peak_bytes: sim.peak,
        persistent_bytes,
        schedule,
    })
}

/// The scheduler's selection key for a ready op under the current state.
///
/// The reference loop minimizes `(delta, transient_peak, id)` where
/// `transient_peak = mem + alloc_bytes`; `mem` is shared by every candidate
/// within one selection step, so minimizing `(delta, alloc_bytes, id)` picks
/// the same op — and unlike `transient_peak`, this key only changes when the
/// state of the op's own input tensors changes, making it incrementally
/// maintainable.
fn greedy_key(sim: &PlanSim<'_>, op: usize) -> (i128, u64, u32) {
    (sim.delta(op), sim.alloc_bytes(op), op as u32)
}

/// Greedy min-peak traversal with an incrementally maintained ready set.
///
/// Produces exactly the schedule of [`greedy_schedule_reference`]: same
/// selection key ordering (see [`greedy_key`]), and keys are refreshed for
/// precisely the ready ops whose key inputs changed — the consumers of the
/// executed op's non-persistent operand tensors. Persistent tensors
/// (weights, optimizer state) never satisfy the dying-input or in-place
/// conditions the key reads, so their high-fanout consumer lists are
/// skipped, which is what removes the O(ready²) rescan cost.
///
/// The ready set is a min-heap with **lazy deletion**: a key refresh pushes
/// the new key and leaves the old entry in place, and selection pops until
/// the entry matches the op's current key (`cur_key`), discarding stale
/// ones. Keys embed the op id, so an entry is current iff it equals
/// `cur_key[op]` exactly; the minimum *current* entry popped this way is the
/// same op a `BTreeSet` of current keys would yield, but without paying a
/// tree rebalance on every refresh.
///
/// Under [`InPlacePolicy::Never`] the keys themselves are maintained
/// **incrementally**: `alloc_bytes` is then state-independent, and `delta`
/// depends on the simulation only through the dying-input sum — input
/// tensors with `refcount == 1 && live && !persistent` — so a ready op's key
/// changes exactly when one of its input tensors toggles that dying state,
/// and the change is `∓size` on the delta component. Tracking per-tensor
/// dying flags turns the per-step refresh from "recompute `delta` (a walk
/// over every operand) for every consumer of every touched tensor" into a
/// constant-time patch per actually-toggled tensor edge. The `Elementwise`
/// policy keeps the full recompute: in-place reuse makes `alloc_bytes`
/// state-dependent too, and that policy is off the sweep hot path.
///
/// When every tensor size fits the packed-key bound (see
/// [`greedy_schedule_packed`]) the incremental path additionally runs with
/// single-`u128` keys — the common case for every real model grid.
fn greedy_schedule(plan: &FootprintPlan, sim: &mut PlanSim<'_>) -> Vec<OpId> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let incremental_keys = sim.in_place == InPlacePolicy::Never;
    if incremental_keys {
        // Heap compares dominate the greedy pass; if the whole size table
        // sums below 2^47 bytes (~140 TB — true for any priceable model),
        // `delta`, `alloc`, and the op id pack exactly into one u128 key.
        let total: u128 = sim.size.iter().map(|&s| s as u128).sum();
        if total < PACK_BIAS as u128 {
            return greedy_schedule_packed(plan, sim);
        }
    }
    let n_ops = plan.ops();
    // deps[o] = not-yet-executed producer-backed input occurrences.
    let mut deps: Vec<u32> = plan.init_deps.clone();
    // dying[t] = this tensor's storage is released by its final pending
    // consumer (the state `delta` reads per input occurrence).
    let mut dying: Vec<bool> = (0..plan.tensors())
        .map(|i| sim.refcount[i] == 1 && sim.live[i] && !plan.persistent[i])
        .collect();
    let mut ready: BinaryHeap<Reverse<(i128, u64, u32)>> = BinaryHeap::with_capacity(n_ops);
    let mut cur_key: Vec<Option<(i128, u64, u32)>> = vec![None; n_ops];
    for op in 0..n_ops {
        if deps[op] == 0 {
            let k = greedy_key(sim, op);
            ready.push(Reverse(k));
            cur_key[op] = Some(k);
        }
    }
    let mut schedule = Vec::with_capacity(n_ops);

    while let Some(Reverse(k)) = ready.pop() {
        let op = k.2 as usize;
        if cur_key[op] != Some(k) {
            continue; // stale entry superseded by a key refresh
        }
        cur_key[op] = None;
        sim.run(op);
        schedule.push(OpId(k.2));
        // Refresh ready ops whose key may have changed: consumers of the
        // tensors whose refcount/liveness this op just touched. Runs before
        // dependents are unlocked so freshly computed keys (which already
        // reflect the post-run state) are never patched twice.
        for &t in plan.inputs(op).iter().chain(plan.outputs(op)) {
            let ti = t as usize;
            if plan.persistent[ti] {
                continue;
            }
            if incremental_keys {
                let now = sim.refcount[ti] == 1 && sim.live[ti];
                if now == dying[ti] {
                    continue;
                }
                dying[ti] = now;
                // Dying inputs are subtracted from `delta`; one patch per
                // consumer edge matches `delta`'s per-occurrence sum.
                let ds = if now {
                    -(sim.size[ti] as i128)
                } else {
                    sim.size[ti] as i128
                };
                for &c in plan.consumers(ti) {
                    let ci = c as usize;
                    if let Some(old) = cur_key[ci] {
                        let new = (old.0 + ds, old.1, old.2);
                        ready.push(Reverse(new));
                        cur_key[ci] = Some(new);
                    }
                }
            } else {
                for &c in plan.consumers(ti) {
                    let ci = c as usize;
                    if let Some(old) = cur_key[ci] {
                        let new = greedy_key(sim, ci);
                        if new != old {
                            ready.push(Reverse(new));
                            cur_key[ci] = Some(new);
                        }
                    }
                }
            }
        }
        // Unlock dependents: one decrement per consumer edge matches the
        // per-occurrence count in `deps`.
        for &out in plan.outputs(op) {
            for &c in plan.consumers(out as usize) {
                let ci = c as usize;
                deps[ci] -= 1;
                if deps[ci] == 0 {
                    let k = greedy_key(sim, ci);
                    ready.push(Reverse(k));
                    cur_key[ci] = Some(k);
                }
            }
        }
    }
    assert_eq!(
        schedule.len(),
        n_ops,
        "greedy scheduler failed to schedule every op (cycle?)"
    );
    schedule
}

/// Bias making the packed delta field non-negative; also the size-sum bound
/// under which packing is exact.
const PACK_BIAS: u64 = 1 << 47;

/// Pack `(delta, alloc, id)` into one `u128`, preserving lexicographic
/// order: biased delta in bits 127..80 (48 bits), alloc in bits 79..32
/// (48 bits), op id in bits 31..0. Exact whenever the total size table sums
/// below [`PACK_BIAS`] bytes, which bounds both `|delta|` and `alloc`.
fn pack_key(delta: i128, alloc: u64, id: u32) -> u128 {
    debug_assert!((-(PACK_BIAS as i128)..PACK_BIAS as i128).contains(&delta));
    debug_assert!(alloc < PACK_BIAS);
    (((delta + PACK_BIAS as i128) as u128) << 80) | ((alloc as u128) << 32) | id as u128
}

/// [`greedy_schedule`]'s incremental path with single-`u128` keys.
///
/// Same selection order as the tuple path — `pack_key` is a strictly
/// monotone encoding of `(delta, alloc_bytes, id)` under the caller-checked
/// size bound — but heap sift compares are one wide integer compare instead
/// of a three-field tuple walk, and the delta patch for a toggled dying
/// tensor is a single wrapping add into the top field (the lower fields are
/// untouched because the addend's low 80 bits are zero).
fn greedy_schedule_packed(plan: &FootprintPlan, sim: &mut PlanSim<'_>) -> Vec<OpId> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// `cur_key` sentinel for "not ready": unreachable as a packed key
    /// because the alloc field can never be all-ones under the size bound.
    const NOT_READY: u128 = u128::MAX;

    let n_ops = plan.ops();
    let mut deps: Vec<u32> = plan.init_deps.clone();
    let mut dying: Vec<bool> = (0..plan.tensors())
        .map(|i| sim.refcount[i] == 1 && sim.live[i] && !plan.persistent[i])
        .collect();
    let mut ready: BinaryHeap<Reverse<u128>> = BinaryHeap::with_capacity(n_ops);
    let mut cur_key: Vec<u128> = vec![NOT_READY; n_ops];
    for op in 0..n_ops {
        if deps[op] == 0 {
            let k = pack_key(sim.delta(op), sim.alloc_bytes(op), op as u32);
            ready.push(Reverse(k));
            cur_key[op] = k;
        }
    }
    let mut schedule = Vec::with_capacity(n_ops);

    while let Some(Reverse(k)) = ready.pop() {
        let op = (k & u32::MAX as u128) as usize;
        if cur_key[op] != k {
            continue; // stale entry superseded by a key refresh
        }
        cur_key[op] = NOT_READY;
        sim.run(op);
        schedule.push(OpId(op as u32));
        for &t in plan.inputs(op).iter().chain(plan.outputs(op)) {
            let ti = t as usize;
            if plan.persistent[ti] {
                continue;
            }
            let now = sim.refcount[ti] == 1 && sim.live[ti];
            if now == dying[ti] {
                continue;
            }
            dying[ti] = now;
            let ds = if now {
                -(sim.size[ti] as i128)
            } else {
                sim.size[ti] as i128
            };
            let patch = (ds << 80) as u128;
            for &c in plan.consumers(ti) {
                let ci = c as usize;
                if cur_key[ci] != NOT_READY {
                    let new = cur_key[ci].wrapping_add(patch);
                    ready.push(Reverse(new));
                    cur_key[ci] = new;
                }
            }
        }
        for &out in plan.outputs(op) {
            for &c in plan.consumers(out as usize) {
                let ci = c as usize;
                deps[ci] -= 1;
                if deps[ci] == 0 {
                    let k = pack_key(sim.delta(ci), sim.alloc_bytes(ci), c);
                    ready.push(Reverse(k));
                    cur_key[ci] = k;
                }
            }
        }
    }
    assert_eq!(
        schedule.len(),
        n_ops,
        "greedy scheduler failed to schedule every op (cycle?)"
    );
    schedule
}

/// The original greedy loop: full rescan of the ready list per step.
fn greedy_schedule_reference(graph: &Graph, sim: &mut Sim<'_>) -> Vec<OpId> {
    let n_ops = graph.ops().len();
    // Dependency counts: number of producer ops that must run first.
    let mut deps = vec![0usize; n_ops];
    for op in graph.ops() {
        let mut count = 0;
        for &i in &op.inputs {
            if graph.producer(i).is_some() {
                count += 1;
            }
        }
        deps[op.id().index()] = count;
    }
    // dependents[o] = ops consuming any output of o (with multiplicity of
    // distinct producer edges handled via dedup below).
    let mut ready: Vec<OpId> = graph
        .ops()
        .iter()
        .filter(|o| deps[o.id().index()] == 0)
        .map(|o| o.id())
        .collect();
    let mut schedule = Vec::with_capacity(n_ops);
    let mut done = vec![false; n_ops];

    while !ready.is_empty() {
        // Pick the ready op with the smallest net delta; break ties by the
        // smaller transient peak, then by program order (stability).
        let mut best = 0;
        let mut best_key = (i128::MAX, u64::MAX, u32::MAX);
        for (pos, &op) in ready.iter().enumerate() {
            let key = (sim.delta(op), sim.transient_peak(op), op.0);
            if key < best_key {
                best_key = key;
                best = pos;
            }
        }
        let op = ready.swap_remove(best);
        sim.run(op);
        done[op.index()] = true;
        schedule.push(op);
        // Unlock dependents: an op becomes ready when all producer-backed
        // inputs are done.
        for &out in &graph.op(op).outputs {
            for &consumer in graph.consumers(out) {
                if done[consumer.index()] {
                    continue;
                }
                let c = graph.op(consumer);
                let all_ready = c.inputs.iter().all(|&i| match graph.producer(i) {
                    None => true,
                    Some(p) => done[p.index()],
                });
                if all_ready && !ready.contains(&consumer) {
                    ready.push(consumer);
                }
            }
        }
    }
    assert_eq!(
        schedule.len(),
        n_ops,
        "greedy scheduler failed to schedule every op (cycle?)"
    );
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autodiff::build_training_step;
    use crate::graph::Graph;
    use crate::op::PointwiseFn;
    use crate::tensor::DType;
    use symath::Expr;

    fn chain_graph() -> Graph {
        // x(1MB) -> relu -> relu -> relu ; all activations 1MB
        let mut g = Graph::new("chain");
        let x = g
            .input("x", [Expr::int(256), Expr::int(1024)], DType::F32)
            .unwrap();
        let mut t = x;
        for i in 0..3 {
            t = g.unary(&format!("relu{i}"), PointwiseFn::Relu, t).unwrap();
        }
        g
    }

    const MB: u64 = 256 * 1024 * 4;

    #[test]
    fn chain_peak_is_two_tensors() {
        let g = chain_graph();
        let r = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        // At any point: one live input + one output being produced.
        assert_eq!(r.peak_bytes, 2 * MB);
        assert_eq!(r.persistent_bytes, 0);
        assert_eq!(r.schedule.len(), 3);
    }

    #[test]
    fn weights_are_persistent() {
        let mut g = Graph::new("wp");
        let x = g
            .input("x", [Expr::int(4), Expr::int(8)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(8), Expr::int(8)]).unwrap();
        let _y = g.matmul("mm", x, w, false, false).unwrap();
        let r = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        assert_eq!(r.persistent_bytes, 8 * 8 * 4);
        // Peak: w (persistent) + x + y live simultaneously.
        assert_eq!(r.peak_bytes, (8 * 8 + 4 * 8 + 4 * 8) * 4);
    }

    #[test]
    fn greedy_never_beats_validity_and_not_worse_than_double() {
        // Diamond: x -> (a, b) -> join. Greedy and program order both valid.
        let mut g = Graph::new("diamond");
        let x = g
            .input("x", [Expr::int(128), Expr::int(128)], DType::F32)
            .unwrap();
        let a = g.unary("a", PointwiseFn::Relu, x).unwrap();
        let b = g.unary("b", PointwiseFn::Tanh, x).unwrap();
        let _j = g.binary("join", PointwiseFn::Add, a, b).unwrap();
        let po = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        let gr = footprint(&g, &Bindings::new(), Scheduler::GreedyMinPeak).unwrap();
        assert!(gr.peak_bytes <= po.peak_bytes);
        assert_eq!(gr.schedule.len(), 3);
    }

    #[test]
    fn activations_held_for_backward_raise_footprint() {
        // Training graph must keep forward activations live until backward.
        let mut g = Graph::new("train");
        let bsym = Expr::int(32);
        let x = g
            .input("x", [bsym.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let mut t = x;
        for i in 0..4 {
            let w = g
                .weight(format!("w{i}"), [Expr::int(64), Expr::int(64)])
                .unwrap();
            t = g.matmul(&format!("fc{i}"), t, w, false, false).unwrap();
            t = g.unary(&format!("relu{i}"), PointwiseFn::Relu, t).unwrap();
        }
        let labels = g.input("labels", [bsym], DType::I32).unwrap();
        let fwd_only = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        let loss = g.cross_entropy("loss", t, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let train = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        assert!(
            train.peak_bytes > fwd_only.peak_bytes,
            "training footprint {} must exceed inference footprint {}",
            train.peak_bytes,
            fwd_only.peak_bytes
        );
        // Weight gradients are freed after their updates, so they do not add
        // to the persistent set — only the weights persist.
        assert_eq!(train.persistent_bytes, fwd_only.persistent_bytes);
        // But the peak must cover weights plus at least one full gradient.
        assert!(train.peak_bytes > 2 * train.persistent_bytes);
    }

    #[test]
    fn greedy_schedules_all_ops_of_training_graph() {
        let mut g = Graph::new("train2");
        let x = g
            .input("x", [Expr::int(8), Expr::int(16)], DType::F32)
            .unwrap();
        let w1 = g.weight("w1", [Expr::int(16), Expr::int(16)]).unwrap();
        let h = g.matmul("fc1", x, w1, false, false).unwrap();
        let h = g.unary("tanh", PointwiseFn::Tanh, h).unwrap();
        let labels = g.input("labels", [Expr::int(8)], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", h, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let r = footprint(&g, &Bindings::new(), Scheduler::GreedyMinPeak).unwrap();
        assert_eq!(r.schedule.len(), g.ops().len());
    }

    #[test]
    fn best_scheduler_dominates_both_heuristics() {
        let mut g = Graph::new("best");
        let x = g
            .input("x", [Expr::int(64), Expr::int(64)], DType::F32)
            .unwrap();
        let a = g.unary("a", PointwiseFn::Relu, x).unwrap();
        let b = g.unary("b", PointwiseFn::Tanh, x).unwrap();
        let _j = g.binary("join", PointwiseFn::Add, a, b).unwrap();
        let po = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        let gr = footprint(&g, &Bindings::new(), Scheduler::GreedyMinPeak).unwrap();
        let best = footprint(&g, &Bindings::new(), Scheduler::Best).unwrap();
        assert_eq!(best.peak_bytes, po.peak_bytes.min(gr.peak_bytes));
    }

    /// A training graph with enough fan-out and reclaimable tensors to make
    /// the greedy ready-set nontrivial.
    fn equivalence_graph() -> Graph {
        let mut g = Graph::new("equiv");
        let b = Expr::sym("eq_b");
        let mut t = g
            .input("x", [b.clone(), Expr::int(48)], DType::F32)
            .unwrap();
        let w_shared = g
            .weight("w_shared", [Expr::int(48), Expr::int(48)])
            .unwrap();
        for i in 0..6 {
            let u = g
                .matmul(&format!("fc{i}"), t, w_shared, false, false)
                .unwrap();
            let v = g.unary(&format!("act{i}"), PointwiseFn::Tanh, u).unwrap();
            t = g
                .binary(&format!("res{i}"), PointwiseFn::Add, v, t)
                .unwrap();
        }
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", t, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        g
    }

    #[test]
    fn incremental_greedy_matches_reference_schedule() {
        let g = equivalence_graph();
        let bind = Bindings::new().with("eq_b", 16.0);
        let fast = footprint(&g, &bind, Scheduler::GreedyMinPeak).unwrap();
        let reference = footprint_reference(&g, &bind, Scheduler::GreedyMinPeak).unwrap();
        assert_eq!(fast.schedule, reference.schedule);
        assert_eq!(fast.peak_bytes, reference.peak_bytes);
        assert_eq!(fast.persistent_bytes, reference.persistent_bytes);
    }

    #[test]
    fn incremental_greedy_matches_reference_in_place() {
        let g = equivalence_graph();
        let bind = Bindings::new().with("eq_b", 16.0);
        let sizes = tensor_sizes(&g, &bind).unwrap();
        let fast = footprint_with_sizes(
            &g,
            &sizes,
            Scheduler::GreedyMinPeak,
            InPlacePolicy::Elementwise,
        );
        let mut sim = Sim::with_sizes(&g, sizes.clone(), InPlacePolicy::Elementwise);
        let reference = greedy_schedule_reference(&g, &mut sim);
        assert_eq!(fast.schedule, reference);
        assert_eq!(fast.peak_bytes, sim.peak);
    }

    #[test]
    fn huge_sizes_fall_back_to_tuple_keys_and_match_reference() {
        // Inflate every size by 2^30 so the table sums past the packed-key
        // bound: the greedy pass must take the tuple-key path and still
        // reproduce the reference schedule exactly.
        let g = equivalence_graph();
        let bind = Bindings::new().with("eq_b", 16.0);
        let huge: Vec<u64> = tensor_sizes(&g, &bind)
            .unwrap()
            .iter()
            .map(|s| s << 30)
            .collect();
        assert!(huge.iter().map(|&s| s as u128).sum::<u128>() >= 1 << 47);
        let fast = footprint_with_sizes(&g, &huge, Scheduler::GreedyMinPeak, InPlacePolicy::Never);
        let mut sim = Sim::with_sizes(&g, huge.clone(), InPlacePolicy::Never);
        let reference = greedy_schedule_reference(&g, &mut sim);
        assert_eq!(fast.schedule, reference);
        assert_eq!(fast.peak_bytes, sim.peak);
    }

    #[test]
    fn plan_reuse_matches_per_call_simulation() {
        // One plan priced against several size tables must agree with the
        // graph-walking reference at every point.
        let g = equivalence_graph();
        let plan = FootprintPlan::new(&g);
        assert_eq!(plan.ops(), g.ops().len());
        assert_eq!(plan.tensors(), g.tensors().len());
        for b in [4.0, 16.0, 64.0] {
            let bind = Bindings::new().with("eq_b", b);
            let sizes = tensor_sizes(&g, &bind).unwrap();
            let via_plan =
                footprint_with_plan(&plan, &sizes, Scheduler::Best, InPlacePolicy::Never);
            let direct = footprint_reference(&g, &bind, Scheduler::Best).unwrap();
            assert_eq!(via_plan.peak_bytes, direct.peak_bytes);
            assert_eq!(via_plan.schedule, direct.schedule);
            assert_eq!(via_plan.persistent_bytes, direct.persistent_bytes);
        }
    }

    #[test]
    fn best_shares_sizes_and_matches_reference() {
        let g = equivalence_graph();
        let bind = Bindings::new().with("eq_b", 8.0);
        let fast = footprint(&g, &bind, Scheduler::Best).unwrap();
        let reference = footprint_reference(&g, &bind, Scheduler::Best).unwrap();
        assert_eq!(fast.peak_bytes, reference.peak_bytes);
        assert_eq!(fast.schedule, reference.schedule);
    }

    #[test]
    fn footprint_scales_with_batch_binding() {
        let mut g = Graph::new("scale");
        let b = Expr::sym("fp_b");
        let x = g.input("x", [b, Expr::int(1024)], DType::F32).unwrap();
        let _y = g.unary("relu", PointwiseFn::Relu, x).unwrap();
        let r1 = footprint(
            &g,
            &Bindings::new().with("fp_b", 1.0),
            Scheduler::ProgramOrder,
        )
        .unwrap();
        let r4 = footprint(
            &g,
            &Bindings::new().with("fp_b", 4.0),
            Scheduler::ProgramOrder,
        )
        .unwrap();
        assert_eq!(r4.peak_bytes, 4 * r1.peak_bytes);
    }
}

#[cfg(test)]
mod in_place_tests {
    use super::*;
    use crate::graph::Graph;
    use crate::op::PointwiseFn;
    use crate::tensor::DType;
    use symath::Expr;

    const MB: u64 = 256 * 1024 * 4;

    #[test]
    fn relu_chain_runs_in_one_buffer() {
        // x -> relu -> relu -> relu: with in-place execution the whole chain
        // needs a single 1 MB buffer; the conservative model needs two.
        let mut g = Graph::new("ipchain");
        let x = g
            .input("x", [Expr::int(256), Expr::int(1024)], DType::F32)
            .unwrap();
        let mut t = x;
        for i in 0..3 {
            t = g.unary(&format!("relu{i}"), PointwiseFn::Relu, t).unwrap();
        }
        let never = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Never,
        )
        .unwrap();
        let ip = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Elementwise,
        )
        .unwrap();
        assert_eq!(never.peak_bytes, 2 * MB);
        assert_eq!(ip.peak_bytes, MB);
    }

    #[test]
    fn fanout_blocks_in_place_reuse() {
        // x feeds two consumers: the first cannot overwrite it.
        let mut g = Graph::new("ipfan");
        let x = g
            .input("x", [Expr::int(256), Expr::int(1024)], DType::F32)
            .unwrap();
        let a = g.unary("a", PointwiseFn::Relu, x).unwrap();
        let _b = g.binary("join", PointwiseFn::Add, a, x).unwrap();
        let ip = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Elementwise,
        )
        .unwrap();
        // `a` must allocate (x still live for join); join may reuse.
        assert_eq!(ip.peak_bytes, 2 * MB);
    }

    #[test]
    fn matmul_never_runs_in_place() {
        let mut g = Graph::new("ipmm");
        let x = g
            .input("x", [Expr::int(512), Expr::int(512)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(512), Expr::int(512)]).unwrap();
        let _y = g.matmul("mm", x, w, false, false).unwrap();
        let never = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Never,
        )
        .unwrap();
        let ip = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Elementwise,
        )
        .unwrap();
        assert_eq!(never.peak_bytes, ip.peak_bytes);
    }

    #[test]
    fn in_place_never_exceeds_conservative_on_training_graphs() {
        use crate::autodiff::build_training_step;
        let mut g = Graph::new("iptrain");
        let b = Expr::sym("ip_b");
        let mut t = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        for i in 0..3 {
            let w = g
                .weight(format!("w{i}"), [Expr::int(64), Expr::int(64)])
                .unwrap();
            t = g.matmul(&format!("fc{i}"), t, w, false, false).unwrap();
            t = g.unary(&format!("act{i}"), PointwiseFn::Tanh, t).unwrap();
        }
        let labels = g.input("y", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", t, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let bind = Bindings::new().with("ip_b", 32.0);
        let never = footprint_with(&g, &bind, Scheduler::Best, InPlacePolicy::Never).unwrap();
        let ip = footprint_with(&g, &bind, Scheduler::Best, InPlacePolicy::Elementwise).unwrap();
        assert!(ip.peak_bytes <= never.peak_bytes);
        assert!(ip.peak_bytes > 0);
    }
}
