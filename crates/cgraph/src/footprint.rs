//! Minimal memory-footprint estimation (paper §2.1, §4.5).
//!
//! The paper defines *algorithmic memory footprint* as the minimum over all
//! correct topological traversals of the maximum memory needed for all
//! active tensors at any point of the traversal. Finding the true minimum is
//! NP-hard in general; like the Catamount artifact we estimate it by
//! simulating traversals:
//!
//! * [`Scheduler::ProgramOrder`] replays the construction order (what an
//!   eager framework would do), and
//! * [`Scheduler::GreedyMinPeak`] at each step runs the ready op that
//!   minimizes the net change in live memory — a strong practical baseline
//!   that the ablation bench compares against program order.
//!
//! Weights and weight-gradients are persistent for the whole step;
//! activations and gradients are freed once their last consumer has run.

use symath::{Bindings, UnboundSymbol};

use crate::graph::Graph;
use crate::op::{OpId, OpKind, PointwiseFn};

/// Whether ops may overwrite a dying input instead of allocating a fresh
/// output (paper §4.5: "Tensorflow optimizes to perform some ops on tensors
/// in-place rather than allocating separate output tensors", which is why
/// the paper's topological estimates slightly overestimate TF).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InPlacePolicy {
    /// Every op allocates fresh outputs (the paper's conservative default).
    #[default]
    Never,
    /// Elementwise ops whose output matches a same-sized input that dies at
    /// this op reuse its allocation.
    Elementwise,
}

/// Traversal policy for the footprint simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheduler {
    /// Execute ops in construction order.
    ProgramOrder,
    /// Greedily execute the ready op with the smallest net memory delta.
    /// Strong on graphs with reclaimable fan-out, but short-sighted
    /// schedules can lose to program order (see the scheduler ablation).
    GreedyMinPeak,
    /// Run every heuristic and report the best (smallest-peak) traversal —
    /// the closest estimate of the paper's minimum-over-traversals
    /// definition.
    Best,
}

/// Result of a footprint simulation.
#[derive(Clone, Debug)]
pub struct FootprintReport {
    /// Peak bytes live at any point of the traversal.
    pub peak_bytes: u64,
    /// Bytes that stay allocated for the entire step (weights + weight
    /// gradients).
    pub persistent_bytes: u64,
    /// The op order that achieved `peak_bytes`.
    pub schedule: Vec<OpId>,
}

struct Sim<'g> {
    graph: &'g Graph,
    size: Vec<u64>,
    refcount: Vec<usize>,
    live: Vec<bool>,
    mem: u64,
    peak: u64,
    in_place: InPlacePolicy,
}

/// Elementwise op kinds eligible for in-place execution: output overwrites
/// an input of identical element count.
fn in_place_eligible(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Pointwise(
            PointwiseFn::Add
                | PointwiseFn::Sub
                | PointwiseFn::Mul
                | PointwiseFn::Relu
                | PointwiseFn::Sigmoid
                | PointwiseFn::Tanh
                | PointwiseFn::Exp
                | PointwiseFn::Scale
                | PointwiseFn::Copy
        ) | OpKind::BiasAdd
            | OpKind::PointwiseGrad(_)
            | OpKind::SoftmaxGrad
            | OpKind::Softmax
    )
}

impl<'g> Sim<'g> {
    fn new(
        graph: &'g Graph,
        bindings: &Bindings,
        in_place: InPlacePolicy,
    ) -> Result<Sim<'g>, UnboundSymbol> {
        Ok(Sim::with_sizes(
            graph,
            tensor_sizes(graph, bindings)?,
            in_place,
        ))
    }

    /// Build a simulation from precomputed per-tensor byte sizes (indexed by
    /// [`TensorId::index`](crate::tensor::TensorId)). Lets callers evaluate
    /// sizes once and share them across schedulers or sweep points.
    fn with_sizes(graph: &'g Graph, size: Vec<u64>, in_place: InPlacePolicy) -> Sim<'g> {
        let n = graph.tensors().len();
        debug_assert_eq!(size.len(), n);
        let refcount: Vec<usize> = graph
            .tensors()
            .iter()
            .map(|t| graph.consumers(t.id()).len())
            .collect();
        let mut sim = Sim {
            graph,
            size,
            refcount,
            live: vec![false; n],
            mem: 0,
            peak: 0,
            in_place,
        };
        // Source tensors (no producer) are live from the start: weights are
        // persistent, inputs are freed after their last consumer.
        for t in graph.tensors() {
            if graph.producer(t.id()).is_none() {
                sim.alloc(t.id().index());
            }
        }
        sim.peak = sim.mem;
        sim
    }

    fn alloc(&mut self, idx: usize) {
        debug_assert!(!self.live[idx]);
        self.live[idx] = true;
        self.mem += self.size[idx];
    }

    fn free(&mut self, idx: usize) {
        debug_assert!(self.live[idx]);
        self.live[idx] = false;
        self.mem -= self.size[idx];
    }

    fn persistent(&self, idx: usize) -> bool {
        self.graph.tensors()[idx].kind.is_persistent()
    }

    /// Whether `op` executes in place under the active policy: a single
    /// output whose bytes match a dying, non-persistent input.
    fn runs_in_place(&self, op: OpId) -> bool {
        if self.in_place != InPlacePolicy::Elementwise {
            return false;
        }
        let op = self.graph.op(op);
        if op.outputs.len() != 1 || !in_place_eligible(&op.kind) {
            return false;
        }
        let out_size = self.size[op.outputs[0].index()];
        op.inputs.iter().any(|&i| {
            let idx = i.index();
            self.size[idx] == out_size
                && self.refcount[idx] == 1
                && self.live[idx]
                && !self.persistent(idx)
        })
    }

    /// Bytes the op must allocate on execution (zero transient growth for
    /// in-place ops).
    fn alloc_bytes(&self, op_id: OpId) -> u64 {
        if self.runs_in_place(op_id) {
            return 0;
        }
        let op = self.graph.op(op_id);
        op.outputs.iter().map(|&o| self.size[o.index()]).sum()
    }

    /// Net memory delta of running `op` now (allocations minus frees),
    /// without mutating state.
    fn delta(&self, op: OpId) -> i128 {
        let alloc = self.alloc_bytes(op) as i128;
        let op_ref = self.graph.op(op);
        let mut d: i128 = alloc;
        for &o in &op_ref.outputs {
            // Outputs nobody consumes are freed right away unless persistent.
            if self.graph.consumers(o).is_empty() && !self.persistent(o.index()) {
                d -= self.size[o.index()] as i128;
            }
        }
        let in_place = self.runs_in_place(op);
        let mut reused = false;
        let out_size = op_ref
            .outputs
            .first()
            .map(|&o| self.size[o.index()])
            .unwrap_or(0);
        for &i in &op_ref.inputs {
            let idx = i.index();
            if self.refcount[idx] == 1 && !self.persistent(idx) && self.live[idx] {
                // The reused input's storage becomes the output's: it is not
                // freed (once).
                if in_place && !reused && self.size[idx] == out_size {
                    reused = true;
                    continue;
                }
                d -= self.size[idx] as i128;
            }
        }
        d
    }

    /// Peak memory reached *during* `op` (outputs allocated before inputs
    /// can be released).
    fn transient_peak(&self, op: OpId) -> u64 {
        self.mem + self.alloc_bytes(op)
    }

    fn run(&mut self, op_id: OpId) {
        self.peak = self.peak.max(self.transient_peak(op_id));
        let in_place = self.runs_in_place(op_id);
        // Borrow the op through the graph reference (not `self`) so the
        // &mut self bookkeeping below needs no per-op clone of the op.
        let graph = self.graph;
        let op = graph.op(op_id);
        let out_size = op
            .outputs
            .first()
            .map(|&o| self.size[o.index()])
            .unwrap_or(0);
        for &o in &op.outputs {
            self.alloc(o.index());
        }
        if in_place {
            // The output storage is the reused input's: cancel the growth.
            self.mem -= out_size;
        }
        let mut reused = false;
        for &i in &op.inputs {
            let idx = i.index();
            debug_assert!(self.refcount[idx] > 0);
            self.refcount[idx] -= 1;
            if self.refcount[idx] == 0 && !self.persistent(idx) && self.live[idx] {
                if in_place && !reused && self.size[idx] == out_size {
                    // Its bytes live on as the output; mark dead without
                    // releasing memory (already accounted above).
                    reused = true;
                    self.live[idx] = false;
                    continue;
                }
                self.free(idx);
            }
        }
        for &o in &op.outputs {
            let idx = o.index();
            if self.refcount[idx] == 0 && !self.persistent(idx) {
                self.free(idx);
            }
        }
        self.peak = self.peak.max(self.mem);
    }
}

/// Simulate a traversal of `graph` under `bindings` and report the footprint
/// (conservative: every op allocates fresh outputs).
pub fn footprint(
    graph: &Graph,
    bindings: &Bindings,
    scheduler: Scheduler,
) -> Result<FootprintReport, UnboundSymbol> {
    footprint_with(graph, bindings, scheduler, InPlacePolicy::Never)
}

/// [`footprint`] with an explicit in-place policy.
pub fn footprint_with(
    graph: &Graph,
    bindings: &Bindings,
    scheduler: Scheduler,
    in_place: InPlacePolicy,
) -> Result<FootprintReport, UnboundSymbol> {
    let sizes = tensor_sizes(graph, bindings)?;
    Ok(footprint_with_sizes(graph, &sizes, scheduler, in_place))
}

/// Evaluate every tensor's byte size under `bindings`, indexed by
/// [`TensorId::index`](crate::tensor::TensorId). The exact per-tensor
/// rounding the simulation uses; precompute once to share across schedulers
/// or sweep points.
pub fn tensor_sizes(graph: &Graph, bindings: &Bindings) -> Result<Vec<u64>, UnboundSymbol> {
    graph
        .tensors()
        .iter()
        .map(|t| t.bytes_u64(bindings))
        .collect()
}

/// [`footprint_with`] over precomputed tensor sizes (no symbolic
/// evaluation). `Scheduler::Best` runs both heuristics against the same size
/// table instead of re-evaluating it.
pub fn footprint_with_sizes(
    graph: &Graph,
    sizes: &[u64],
    scheduler: Scheduler,
    in_place: InPlacePolicy,
) -> FootprintReport {
    let _span = obs::span("cgraph.footprint")
        .with_arg("graph", graph.name.as_str())
        .with_arg("scheduler", format!("{scheduler:?}"))
        .with_arg("ops", graph.ops().len());
    if scheduler == Scheduler::Best {
        let program = footprint_with_sizes(graph, sizes, Scheduler::ProgramOrder, in_place);
        let greedy = footprint_with_sizes(graph, sizes, Scheduler::GreedyMinPeak, in_place);
        return if greedy.peak_bytes <= program.peak_bytes {
            greedy
        } else {
            program
        };
    }
    let mut sim = Sim::with_sizes(graph, sizes.to_vec(), in_place);
    let persistent_bytes: u64 = graph
        .tensors()
        .iter()
        .filter(|t| t.kind.is_persistent())
        .map(|t| sim.size[t.id().index()])
        .sum();

    let schedule = match scheduler {
        Scheduler::ProgramOrder => {
            let order: Vec<OpId> = graph.ops().iter().map(|o| o.id()).collect();
            for &op in &order {
                sim.run(op);
            }
            order
        }
        Scheduler::GreedyMinPeak => greedy_schedule(graph, &mut sim),
        Scheduler::Best => unreachable!("handled above"),
    };

    FootprintReport {
        peak_bytes: sim.peak,
        persistent_bytes,
        schedule,
    }
}

/// The pre-optimization reference simulation: the naive greedy selection
/// loop that rescans every ready op per step. Kept as the brute-force
/// oracle for the scheduler-equivalence tests and the sweep benchmark
/// baseline; [`footprint`] produces the identical schedule faster.
pub fn footprint_reference(
    graph: &Graph,
    bindings: &Bindings,
    scheduler: Scheduler,
) -> Result<FootprintReport, UnboundSymbol> {
    let in_place = InPlacePolicy::Never;
    if scheduler == Scheduler::Best {
        let program = footprint_reference(graph, bindings, Scheduler::ProgramOrder)?;
        let greedy = footprint_reference(graph, bindings, Scheduler::GreedyMinPeak)?;
        return Ok(if greedy.peak_bytes <= program.peak_bytes {
            greedy
        } else {
            program
        });
    }
    let mut sim = Sim::new(graph, bindings, in_place)?;
    let persistent_bytes: u64 = graph
        .tensors()
        .iter()
        .filter(|t| t.kind.is_persistent())
        .map(|t| sim.size[t.id().index()])
        .sum();
    let schedule = match scheduler {
        Scheduler::ProgramOrder => {
            let order: Vec<OpId> = graph.ops().iter().map(|o| o.id()).collect();
            for &op in &order {
                sim.run(op);
            }
            order
        }
        Scheduler::GreedyMinPeak => greedy_schedule_reference(graph, &mut sim),
        Scheduler::Best => unreachable!("handled above"),
    };
    Ok(FootprintReport {
        peak_bytes: sim.peak,
        persistent_bytes,
        schedule,
    })
}

/// The scheduler's selection key for a ready op under the current state.
///
/// The reference loop minimizes `(delta, transient_peak, id)` where
/// `transient_peak = mem + alloc_bytes`; `mem` is shared by every candidate
/// within one selection step, so minimizing `(delta, alloc_bytes, id)` picks
/// the same op — and unlike `transient_peak`, this key only changes when the
/// state of the op's own input tensors changes, making it incrementally
/// maintainable.
fn greedy_key(sim: &Sim<'_>, op: OpId) -> (i128, u64, u32) {
    (sim.delta(op), sim.alloc_bytes(op), op.0)
}

/// Greedy min-peak traversal with an incrementally maintained ready set.
///
/// Produces exactly the schedule of [`greedy_schedule_reference`]: same
/// selection key ordering (see [`greedy_key`]), and keys are refreshed for
/// precisely the ready ops whose key inputs changed — the consumers of the
/// executed op's non-persistent operand tensors. Persistent tensors
/// (weights, optimizer state) never satisfy the dying-input or in-place
/// conditions the key reads, so their high-fanout consumer lists are
/// skipped, which is what removes the O(ready²) rescan cost.
fn greedy_schedule(graph: &Graph, sim: &mut Sim<'_>) -> Vec<OpId> {
    let n_ops = graph.ops().len();
    // deps[o] = not-yet-executed producer-backed input occurrences.
    let mut deps = vec![0usize; n_ops];
    for op in graph.ops() {
        deps[op.id().index()] = op
            .inputs
            .iter()
            .filter(|&&i| graph.producer(i).is_some())
            .count();
    }
    let mut ready: std::collections::BTreeSet<(i128, u64, u32)> = std::collections::BTreeSet::new();
    let mut cur_key: Vec<Option<(i128, u64, u32)>> = vec![None; n_ops];
    for op in graph.ops() {
        if deps[op.id().index()] == 0 {
            let k = greedy_key(sim, op.id());
            ready.insert(k);
            cur_key[op.id().index()] = Some(k);
        }
    }
    let mut schedule = Vec::with_capacity(n_ops);

    while let Some(&k) = ready.iter().next() {
        let op_id = OpId(k.2);
        ready.remove(&k);
        cur_key[op_id.index()] = None;
        sim.run(op_id);
        schedule.push(op_id);
        let op = graph.op(op_id);
        // Unlock dependents: one decrement per consumer edge matches the
        // per-occurrence count in `deps`.
        for &out in &op.outputs {
            for &c in graph.consumers(out) {
                let ci = c.index();
                deps[ci] -= 1;
                if deps[ci] == 0 {
                    let k = greedy_key(sim, c);
                    ready.insert(k);
                    cur_key[ci] = Some(k);
                }
            }
        }
        // Refresh ready ops whose key may have changed: consumers of the
        // tensors whose refcount/liveness this op just touched.
        for &t in op.inputs.iter().chain(op.outputs.iter()) {
            if sim.persistent(t.index()) {
                continue;
            }
            for &c in graph.consumers(t) {
                let ci = c.index();
                if let Some(old) = cur_key[ci] {
                    let new = greedy_key(sim, c);
                    if new != old {
                        ready.remove(&old);
                        ready.insert(new);
                        cur_key[ci] = Some(new);
                    }
                }
            }
        }
    }
    assert_eq!(
        schedule.len(),
        n_ops,
        "greedy scheduler failed to schedule every op (cycle?)"
    );
    schedule
}

/// The original greedy loop: full rescan of the ready list per step.
fn greedy_schedule_reference(graph: &Graph, sim: &mut Sim<'_>) -> Vec<OpId> {
    let n_ops = graph.ops().len();
    // Dependency counts: number of producer ops that must run first.
    let mut deps = vec![0usize; n_ops];
    for op in graph.ops() {
        let mut count = 0;
        for &i in &op.inputs {
            if graph.producer(i).is_some() {
                count += 1;
            }
        }
        deps[op.id().index()] = count;
    }
    // dependents[o] = ops consuming any output of o (with multiplicity of
    // distinct producer edges handled via dedup below).
    let mut ready: Vec<OpId> = graph
        .ops()
        .iter()
        .filter(|o| deps[o.id().index()] == 0)
        .map(|o| o.id())
        .collect();
    let mut schedule = Vec::with_capacity(n_ops);
    let mut done = vec![false; n_ops];

    while !ready.is_empty() {
        // Pick the ready op with the smallest net delta; break ties by the
        // smaller transient peak, then by program order (stability).
        let mut best = 0;
        let mut best_key = (i128::MAX, u64::MAX, u32::MAX);
        for (pos, &op) in ready.iter().enumerate() {
            let key = (sim.delta(op), sim.transient_peak(op), op.0);
            if key < best_key {
                best_key = key;
                best = pos;
            }
        }
        let op = ready.swap_remove(best);
        sim.run(op);
        done[op.index()] = true;
        schedule.push(op);
        // Unlock dependents: an op becomes ready when all producer-backed
        // inputs are done.
        for &out in &graph.op(op).outputs {
            for &consumer in graph.consumers(out) {
                if done[consumer.index()] {
                    continue;
                }
                let c = graph.op(consumer);
                let all_ready = c.inputs.iter().all(|&i| match graph.producer(i) {
                    None => true,
                    Some(p) => done[p.index()],
                });
                if all_ready && !ready.contains(&consumer) {
                    ready.push(consumer);
                }
            }
        }
    }
    assert_eq!(
        schedule.len(),
        n_ops,
        "greedy scheduler failed to schedule every op (cycle?)"
    );
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autodiff::build_training_step;
    use crate::graph::Graph;
    use crate::op::PointwiseFn;
    use crate::tensor::DType;
    use symath::Expr;

    fn chain_graph() -> Graph {
        // x(1MB) -> relu -> relu -> relu ; all activations 1MB
        let mut g = Graph::new("chain");
        let x = g
            .input("x", [Expr::int(256), Expr::int(1024)], DType::F32)
            .unwrap();
        let mut t = x;
        for i in 0..3 {
            t = g.unary(&format!("relu{i}"), PointwiseFn::Relu, t).unwrap();
        }
        g
    }

    const MB: u64 = 256 * 1024 * 4;

    #[test]
    fn chain_peak_is_two_tensors() {
        let g = chain_graph();
        let r = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        // At any point: one live input + one output being produced.
        assert_eq!(r.peak_bytes, 2 * MB);
        assert_eq!(r.persistent_bytes, 0);
        assert_eq!(r.schedule.len(), 3);
    }

    #[test]
    fn weights_are_persistent() {
        let mut g = Graph::new("wp");
        let x = g
            .input("x", [Expr::int(4), Expr::int(8)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(8), Expr::int(8)]).unwrap();
        let _y = g.matmul("mm", x, w, false, false).unwrap();
        let r = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        assert_eq!(r.persistent_bytes, 8 * 8 * 4);
        // Peak: w (persistent) + x + y live simultaneously.
        assert_eq!(r.peak_bytes, (8 * 8 + 4 * 8 + 4 * 8) * 4);
    }

    #[test]
    fn greedy_never_beats_validity_and_not_worse_than_double() {
        // Diamond: x -> (a, b) -> join. Greedy and program order both valid.
        let mut g = Graph::new("diamond");
        let x = g
            .input("x", [Expr::int(128), Expr::int(128)], DType::F32)
            .unwrap();
        let a = g.unary("a", PointwiseFn::Relu, x).unwrap();
        let b = g.unary("b", PointwiseFn::Tanh, x).unwrap();
        let _j = g.binary("join", PointwiseFn::Add, a, b).unwrap();
        let po = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        let gr = footprint(&g, &Bindings::new(), Scheduler::GreedyMinPeak).unwrap();
        assert!(gr.peak_bytes <= po.peak_bytes);
        assert_eq!(gr.schedule.len(), 3);
    }

    #[test]
    fn activations_held_for_backward_raise_footprint() {
        // Training graph must keep forward activations live until backward.
        let mut g = Graph::new("train");
        let bsym = Expr::int(32);
        let x = g
            .input("x", [bsym.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let mut t = x;
        for i in 0..4 {
            let w = g
                .weight(format!("w{i}"), [Expr::int(64), Expr::int(64)])
                .unwrap();
            t = g.matmul(&format!("fc{i}"), t, w, false, false).unwrap();
            t = g.unary(&format!("relu{i}"), PointwiseFn::Relu, t).unwrap();
        }
        let labels = g.input("labels", [bsym], DType::I32).unwrap();
        let fwd_only = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        let loss = g.cross_entropy("loss", t, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let train = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        assert!(
            train.peak_bytes > fwd_only.peak_bytes,
            "training footprint {} must exceed inference footprint {}",
            train.peak_bytes,
            fwd_only.peak_bytes
        );
        // Weight gradients are freed after their updates, so they do not add
        // to the persistent set — only the weights persist.
        assert_eq!(train.persistent_bytes, fwd_only.persistent_bytes);
        // But the peak must cover weights plus at least one full gradient.
        assert!(train.peak_bytes > 2 * train.persistent_bytes);
    }

    #[test]
    fn greedy_schedules_all_ops_of_training_graph() {
        let mut g = Graph::new("train2");
        let x = g
            .input("x", [Expr::int(8), Expr::int(16)], DType::F32)
            .unwrap();
        let w1 = g.weight("w1", [Expr::int(16), Expr::int(16)]).unwrap();
        let h = g.matmul("fc1", x, w1, false, false).unwrap();
        let h = g.unary("tanh", PointwiseFn::Tanh, h).unwrap();
        let labels = g.input("labels", [Expr::int(8)], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", h, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let r = footprint(&g, &Bindings::new(), Scheduler::GreedyMinPeak).unwrap();
        assert_eq!(r.schedule.len(), g.ops().len());
    }

    #[test]
    fn best_scheduler_dominates_both_heuristics() {
        let mut g = Graph::new("best");
        let x = g
            .input("x", [Expr::int(64), Expr::int(64)], DType::F32)
            .unwrap();
        let a = g.unary("a", PointwiseFn::Relu, x).unwrap();
        let b = g.unary("b", PointwiseFn::Tanh, x).unwrap();
        let _j = g.binary("join", PointwiseFn::Add, a, b).unwrap();
        let po = footprint(&g, &Bindings::new(), Scheduler::ProgramOrder).unwrap();
        let gr = footprint(&g, &Bindings::new(), Scheduler::GreedyMinPeak).unwrap();
        let best = footprint(&g, &Bindings::new(), Scheduler::Best).unwrap();
        assert_eq!(best.peak_bytes, po.peak_bytes.min(gr.peak_bytes));
    }

    /// A training graph with enough fan-out and reclaimable tensors to make
    /// the greedy ready-set nontrivial.
    fn equivalence_graph() -> Graph {
        let mut g = Graph::new("equiv");
        let b = Expr::sym("eq_b");
        let mut t = g
            .input("x", [b.clone(), Expr::int(48)], DType::F32)
            .unwrap();
        let w_shared = g
            .weight("w_shared", [Expr::int(48), Expr::int(48)])
            .unwrap();
        for i in 0..6 {
            let u = g
                .matmul(&format!("fc{i}"), t, w_shared, false, false)
                .unwrap();
            let v = g.unary(&format!("act{i}"), PointwiseFn::Tanh, u).unwrap();
            t = g
                .binary(&format!("res{i}"), PointwiseFn::Add, v, t)
                .unwrap();
        }
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", t, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        g
    }

    #[test]
    fn incremental_greedy_matches_reference_schedule() {
        let g = equivalence_graph();
        let bind = Bindings::new().with("eq_b", 16.0);
        let fast = footprint(&g, &bind, Scheduler::GreedyMinPeak).unwrap();
        let reference = footprint_reference(&g, &bind, Scheduler::GreedyMinPeak).unwrap();
        assert_eq!(fast.schedule, reference.schedule);
        assert_eq!(fast.peak_bytes, reference.peak_bytes);
        assert_eq!(fast.persistent_bytes, reference.persistent_bytes);
    }

    #[test]
    fn incremental_greedy_matches_reference_in_place() {
        let g = equivalence_graph();
        let bind = Bindings::new().with("eq_b", 16.0);
        let sizes = tensor_sizes(&g, &bind).unwrap();
        let fast = footprint_with_sizes(
            &g,
            &sizes,
            Scheduler::GreedyMinPeak,
            InPlacePolicy::Elementwise,
        );
        let mut sim = Sim::with_sizes(&g, sizes.clone(), InPlacePolicy::Elementwise);
        let reference = greedy_schedule_reference(&g, &mut sim);
        assert_eq!(fast.schedule, reference);
        assert_eq!(fast.peak_bytes, sim.peak);
    }

    #[test]
    fn best_shares_sizes_and_matches_reference() {
        let g = equivalence_graph();
        let bind = Bindings::new().with("eq_b", 8.0);
        let fast = footprint(&g, &bind, Scheduler::Best).unwrap();
        let reference = footprint_reference(&g, &bind, Scheduler::Best).unwrap();
        assert_eq!(fast.peak_bytes, reference.peak_bytes);
        assert_eq!(fast.schedule, reference.schedule);
    }

    #[test]
    fn footprint_scales_with_batch_binding() {
        let mut g = Graph::new("scale");
        let b = Expr::sym("fp_b");
        let x = g.input("x", [b, Expr::int(1024)], DType::F32).unwrap();
        let _y = g.unary("relu", PointwiseFn::Relu, x).unwrap();
        let r1 = footprint(
            &g,
            &Bindings::new().with("fp_b", 1.0),
            Scheduler::ProgramOrder,
        )
        .unwrap();
        let r4 = footprint(
            &g,
            &Bindings::new().with("fp_b", 4.0),
            Scheduler::ProgramOrder,
        )
        .unwrap();
        assert_eq!(r4.peak_bytes, 4 * r1.peak_bytes);
    }
}

#[cfg(test)]
mod in_place_tests {
    use super::*;
    use crate::graph::Graph;
    use crate::op::PointwiseFn;
    use crate::tensor::DType;
    use symath::Expr;

    const MB: u64 = 256 * 1024 * 4;

    #[test]
    fn relu_chain_runs_in_one_buffer() {
        // x -> relu -> relu -> relu: with in-place execution the whole chain
        // needs a single 1 MB buffer; the conservative model needs two.
        let mut g = Graph::new("ipchain");
        let x = g
            .input("x", [Expr::int(256), Expr::int(1024)], DType::F32)
            .unwrap();
        let mut t = x;
        for i in 0..3 {
            t = g.unary(&format!("relu{i}"), PointwiseFn::Relu, t).unwrap();
        }
        let never = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Never,
        )
        .unwrap();
        let ip = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Elementwise,
        )
        .unwrap();
        assert_eq!(never.peak_bytes, 2 * MB);
        assert_eq!(ip.peak_bytes, MB);
    }

    #[test]
    fn fanout_blocks_in_place_reuse() {
        // x feeds two consumers: the first cannot overwrite it.
        let mut g = Graph::new("ipfan");
        let x = g
            .input("x", [Expr::int(256), Expr::int(1024)], DType::F32)
            .unwrap();
        let a = g.unary("a", PointwiseFn::Relu, x).unwrap();
        let _b = g.binary("join", PointwiseFn::Add, a, x).unwrap();
        let ip = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Elementwise,
        )
        .unwrap();
        // `a` must allocate (x still live for join); join may reuse.
        assert_eq!(ip.peak_bytes, 2 * MB);
    }

    #[test]
    fn matmul_never_runs_in_place() {
        let mut g = Graph::new("ipmm");
        let x = g
            .input("x", [Expr::int(512), Expr::int(512)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(512), Expr::int(512)]).unwrap();
        let _y = g.matmul("mm", x, w, false, false).unwrap();
        let never = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Never,
        )
        .unwrap();
        let ip = footprint_with(
            &g,
            &Bindings::new(),
            Scheduler::ProgramOrder,
            InPlacePolicy::Elementwise,
        )
        .unwrap();
        assert_eq!(never.peak_bytes, ip.peak_bytes);
    }

    #[test]
    fn in_place_never_exceeds_conservative_on_training_graphs() {
        use crate::autodiff::build_training_step;
        let mut g = Graph::new("iptrain");
        let b = Expr::sym("ip_b");
        let mut t = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        for i in 0..3 {
            let w = g
                .weight(format!("w{i}"), [Expr::int(64), Expr::int(64)])
                .unwrap();
            t = g.matmul(&format!("fc{i}"), t, w, false, false).unwrap();
            t = g.unary(&format!("act{i}"), PointwiseFn::Tanh, t).unwrap();
        }
        let labels = g.input("y", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", t, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let bind = Bindings::new().with("ip_b", 32.0);
        let never = footprint_with(&g, &bind, Scheduler::Best, InPlacePolicy::Never).unwrap();
        let ip = footprint_with(&g, &bind, Scheduler::Best, InPlacePolicy::Elementwise).unwrap();
        assert!(ip.peak_bytes <= never.peak_bytes);
        assert!(ip.peak_bytes > 0);
    }
}
