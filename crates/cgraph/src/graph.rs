//! The compute graph: tensors, ops, and the builder API.
//!
//! Graphs are built append-only: an op may only consume tensors that already
//! exist, and every tensor has at most one producer, so the op list is always
//! a valid topological order. [`Graph::validate`] re-checks the invariants.

use std::collections::HashMap;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};
use symath::Expr;

use crate::op::{
    conv_out_dim, infer_matmul_shape, Op, OpId, OpKind, Phase, PointwiseFn, PoolKind, ReduceKind,
};
use crate::tensor::{DType, Shape, Tensor, TensorId, TensorKind};

/// Errors raised while constructing or validating a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An op referenced a tensor id that does not exist.
    UnknownTensor(TensorId),
    /// Two tensors were given the same name.
    DuplicateName(String),
    /// Operand shapes are inconsistent for the op.
    ShapeMismatch {
        /// Op name.
        op: String,
        /// Explanation.
        detail: String,
    },
    /// Wrong number of operands.
    Arity {
        /// Op name.
        op: String,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        actual: usize,
    },
    /// A tensor was produced by more than one op.
    MultipleProducers(TensorId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownTensor(t) => write!(f, "unknown tensor id {t:?}"),
            GraphError::DuplicateName(n) => write!(f, "duplicate tensor name `{n}`"),
            GraphError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in op `{op}`: {detail}")
            }
            GraphError::Arity {
                op,
                expected,
                actual,
            } => {
                write!(f, "op `{op}` expects {expected} operands, got {actual}")
            }
            GraphError::MultipleProducers(t) => {
                write!(f, "tensor {t:?} has multiple producers")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Flat CSR consumer index: the ops consuming tensor `t` are
/// `edges[offsets[t] .. offsets[t + 1]]`, in op-insertion order (the same
/// order the old per-tensor `Vec<OpId>` lists held). Built lazily from the
/// append-only edge log, so graph construction does one `Vec` push per
/// consumed operand instead of one heap allocation per tensor.
#[derive(Clone, Debug, Default)]
struct ConsumerCsr {
    offsets: Vec<u32>,
    edges: Vec<OpId>,
}

/// A deep-learning training-step compute graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Graph {
    /// Graph name (model identifier).
    pub name: String,
    pub(crate) tensors: Vec<Tensor>,
    pub(crate) ops: Vec<Op>,
    pub(crate) producer: Vec<Option<OpId>>,
    /// Append-only `(tensor index, consuming op)` log; the queryable CSR view
    /// lives in `csr` and is rebuilt on demand after mutation.
    consumer_edges: Vec<(u32, OpId)>,
    csr: OnceLock<ConsumerCsr>,
    name_set: HashMap<String, TensorId>,
}

impl Graph {
    /// A new empty graph.
    pub fn new(name: impl Into<String>) -> Graph {
        Graph {
            name: name.into(),
            ..Graph::default()
        }
    }

    /// All tensors, indexable by [`TensorId::index`].
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// All ops, in topological (construction) order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Look up a tensor.
    pub fn tensor(&self, id: TensorId) -> &Tensor {
        &self.tensors[id.index()]
    }

    /// Look up an op.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// The op that produces `id`, if any (inputs and weights have none).
    pub fn producer(&self, id: TensorId) -> Option<OpId> {
        self.producer[id.index()]
    }

    /// Ops that consume `id` (with multiplicity: an op consuming a tensor
    /// twice appears twice, matching refcount semantics).
    pub fn consumers(&self, id: TensorId) -> &[OpId] {
        let csr = self.csr.get_or_init(|| self.build_csr());
        let lo = csr.offsets[id.index()] as usize;
        let hi = csr.offsets[id.index() + 1] as usize;
        &csr.edges[lo..hi]
    }

    /// Build the CSR view by stable counting sort over the edge log: within
    /// one tensor, edges keep insertion (op) order.
    fn build_csr(&self) -> ConsumerCsr {
        let n = self.tensors.len();
        let mut offsets = vec![0u32; n + 1];
        for &(t, _) in &self.consumer_edges {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edges = vec![OpId(0); self.consumer_edges.len()];
        for &(t, op) in &self.consumer_edges {
            let slot = &mut cursor[t as usize];
            edges[*slot as usize] = op;
            *slot += 1;
        }
        ConsumerCsr { offsets, edges }
    }

    /// Record that `op` consumes `t`, invalidating the CSR view.
    pub(crate) fn record_consumer(&mut self, t: TensorId, op: OpId) {
        self.consumer_edges.push((t.index() as u32, op));
        self.csr = OnceLock::new();
    }

    /// Find a tensor by name.
    pub fn find(&self, name: &str) -> Option<TensorId> {
        self.name_set.get(name).copied()
    }

    fn fresh_tensor(
        &mut self,
        name: String,
        shape: Shape,
        dtype: DType,
        kind: TensorKind,
    ) -> Result<TensorId, GraphError> {
        if self.name_set.contains_key(&name) {
            return Err(GraphError::DuplicateName(name));
        }
        let id = TensorId(self.tensors.len() as u32);
        self.name_set.insert(name.clone(), id);
        self.tensors.push(Tensor {
            id,
            name,
            shape,
            dtype,
            kind,
        });
        self.producer.push(None);
        // A fresh tensor widens the CSR offsets table.
        self.csr = OnceLock::new();
        Ok(id)
    }

    /// Add a graph input (training data).
    pub fn input(
        &mut self,
        name: impl Into<String>,
        shape: impl Into<Shape>,
        dtype: DType,
    ) -> Result<TensorId, GraphError> {
        self.fresh_tensor(name.into(), shape.into(), dtype, TensorKind::Input)
    }

    /// Add a persistent optimizer-state tensor (f32), e.g. a momentum
    /// buffer. Source tensor: allocated for the whole step, no producer.
    pub fn optimizer_state(
        &mut self,
        name: impl Into<String>,
        shape: impl Into<Shape>,
    ) -> Result<TensorId, GraphError> {
        self.fresh_tensor(
            name.into(),
            shape.into(),
            DType::F32,
            TensorKind::OptimizerState,
        )
    }

    /// Add a trainable weight tensor (f32).
    pub fn weight(
        &mut self,
        name: impl Into<String>,
        shape: impl Into<Shape>,
    ) -> Result<TensorId, GraphError> {
        self.fresh_tensor(name.into(), shape.into(), DType::F32, TensorKind::Weight)
    }

    /// Low-level op insertion: validates operands and creates output tensors.
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: Vec<TensorId>,
        outputs: Vec<(String, Shape, DType, TensorKind)>,
        phase: Phase,
    ) -> Result<Vec<TensorId>, GraphError> {
        let name = name.into();
        for &t in &inputs {
            if t.index() >= self.tensors.len() {
                return Err(GraphError::UnknownTensor(t));
            }
        }
        self.check_operands(&name, &kind, &inputs)?;
        let op_id = OpId(self.ops.len() as u32);
        let mut out_ids = Vec::with_capacity(outputs.len());
        for (oname, shape, dtype, okind) in outputs {
            let tid = self.fresh_tensor(oname, shape, dtype, okind)?;
            self.producer[tid.index()] = Some(op_id);
            out_ids.push(tid);
        }
        for &t in &inputs {
            self.record_consumer(t, op_id);
        }
        self.ops.push(Op {
            id: op_id,
            name,
            kind,
            inputs,
            outputs: out_ids.clone(),
            phase,
        });
        Ok(out_ids)
    }

    fn check_operands(
        &self,
        name: &str,
        kind: &OpKind,
        inputs: &[TensorId],
    ) -> Result<(), GraphError> {
        let arity_err = |expected: usize| GraphError::Arity {
            op: name.to_owned(),
            expected,
            actual: inputs.len(),
        };
        let shape = |i: usize| &self.tensor(inputs[i]).shape;
        match kind {
            OpKind::MatMul { ta, tb } => {
                if inputs.len() != 2 {
                    return Err(arity_err(2));
                }
                let (a, b) = (shape(0), shape(1));
                if a.rank() != 2 || b.rank() != 2 {
                    return Err(GraphError::ShapeMismatch {
                        op: name.to_owned(),
                        detail: format!("matmul needs rank-2 operands, got {a} and {b}"),
                    });
                }
                let ka = if *ta { a.dim(0) } else { a.dim(1) };
                let kb = if *tb { b.dim(1) } else { b.dim(0) };
                if ka != kb {
                    return Err(GraphError::ShapeMismatch {
                        op: name.to_owned(),
                        detail: format!("contraction dims differ: {ka} vs {kb}"),
                    });
                }
            }
            OpKind::BatchMatMul { ta, tb } => {
                if inputs.len() != 2 {
                    return Err(arity_err(2));
                }
                let (a, b) = (shape(0), shape(1));
                if a.rank() < 3 || b.rank() < 3 {
                    return Err(GraphError::ShapeMismatch {
                        op: name.to_owned(),
                        detail: format!("batch matmul needs rank≥3 operands, got {a} and {b}"),
                    });
                }
                let ka = if *ta {
                    a.dim(a.rank() - 2)
                } else {
                    a.dim(a.rank() - 1)
                };
                let kb = if *tb {
                    b.dim(b.rank() - 1)
                } else {
                    b.dim(b.rank() - 2)
                };
                if ka != kb {
                    return Err(GraphError::ShapeMismatch {
                        op: name.to_owned(),
                        detail: format!("contraction dims differ: {ka} vs {kb}"),
                    });
                }
            }
            OpKind::Conv2d { .. } => {
                if inputs.len() != 2 {
                    return Err(arity_err(2));
                }
                let (x, w) = (shape(0), shape(1));
                if x.rank() != 4 || w.rank() != 4 {
                    return Err(GraphError::ShapeMismatch {
                        op: name.to_owned(),
                        detail: format!(
                            "conv2d needs NCHW input and OIHW weights, got {x} and {w}"
                        ),
                    });
                }
                if x.dim(1) != w.dim(1) {
                    return Err(GraphError::ShapeMismatch {
                        op: name.to_owned(),
                        detail: format!(
                            "input channels {} != weight channels {}",
                            x.dim(1),
                            w.dim(1)
                        ),
                    });
                }
            }
            OpKind::Pointwise(f) => {
                if inputs.len() != f.arity() {
                    return Err(arity_err(f.arity()));
                }
                if f.arity() == 2 && shape(0) != shape(1) {
                    return Err(GraphError::ShapeMismatch {
                        op: name.to_owned(),
                        detail: format!(
                            "binary pointwise operands differ: {} vs {}",
                            shape(0),
                            shape(1)
                        ),
                    });
                }
            }
            OpKind::BiasAdd
            | OpKind::EmbeddingGather
            | OpKind::EmbeddingScatterAdd
            | OpKind::PointwiseGrad(_)
            | OpKind::SoftmaxGrad
            | OpKind::BatchNormGrad
            | OpKind::CrossEntropyGrad
            | OpKind::Conv2dBackpropInput { .. }
            | OpKind::Conv2dBackpropFilter { .. } => {
                if inputs.len() != 2 {
                    return Err(arity_err(2));
                }
            }
            OpKind::SgdUpdate | OpKind::MomentumUpdate | OpKind::AdamUpdate => {
                let expected = match kind {
                    OpKind::SgdUpdate => 2,
                    OpKind::MomentumUpdate => 3,
                    _ => 4,
                };
                if inputs.len() != expected {
                    return Err(arity_err(expected));
                }
                for i in 1..inputs.len() {
                    if shape(i) != shape(0) {
                        return Err(GraphError::ShapeMismatch {
                            op: name.to_owned(),
                            detail: "weight/gradient/state shapes differ".into(),
                        });
                    }
                }
            }
            OpKind::AddN => {
                if inputs.len() < 2 {
                    return Err(arity_err(2));
                }
                for i in 1..inputs.len() {
                    if shape(i) != shape(0) {
                        return Err(GraphError::ShapeMismatch {
                            op: name.to_owned(),
                            detail: "AddN operands must share a shape".into(),
                        });
                    }
                }
            }
            OpKind::CrossEntropy => {
                if inputs.len() != 2 {
                    return Err(arity_err(2));
                }
            }
            _ => {
                if inputs.is_empty() {
                    return Err(arity_err(1));
                }
            }
        }
        Ok(())
    }

    fn auto_name(&self, base: &str) -> String {
        let mut i = self.tensors.len();
        loop {
            let candidate = format!("{base}.{i}");
            if !self.name_set.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    fn unary_out(
        &mut self,
        opname: &str,
        kind: OpKind,
        input: TensorId,
        shape: Shape,
        out_kind: TensorKind,
        phase: Phase,
    ) -> Result<TensorId, GraphError> {
        let dtype = self.tensor(input).dtype;
        let oname = self.auto_name(opname);
        let out = self.add_op(
            opname.to_owned(),
            kind,
            vec![input],
            vec![(oname, shape, dtype, out_kind)],
            phase,
        )?;
        Ok(out[0])
    }

    // ------------------------------------------------------------------
    // Convenience builders (forward phase, activation outputs)
    // ------------------------------------------------------------------

    /// `C = A·B` (rank-2).
    pub fn matmul(
        &mut self,
        name: &str,
        a: TensorId,
        b: TensorId,
        ta: bool,
        tb: bool,
    ) -> Result<TensorId, GraphError> {
        let kind = OpKind::MatMul { ta, tb };
        let shape = infer_matmul_shape(&kind, &self.tensor(a).shape, &self.tensor(b).shape);
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            kind,
            vec![a, b],
            vec![(oname, shape, DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// Batched matmul over shared leading dims.
    pub fn batch_matmul(
        &mut self,
        name: &str,
        a: TensorId,
        b: TensorId,
        ta: bool,
        tb: bool,
    ) -> Result<TensorId, GraphError> {
        let kind = OpKind::BatchMatMul { ta, tb };
        let shape = infer_matmul_shape(&kind, &self.tensor(a).shape, &self.tensor(b).shape);
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            kind,
            vec![a, b],
            vec![(oname, shape, DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// 2-D convolution (NCHW · OIHW).
    pub fn conv2d(
        &mut self,
        name: &str,
        x: TensorId,
        w: TensorId,
        stride: u64,
        pad: u64,
    ) -> Result<TensorId, GraphError> {
        let ws = self.tensor(w).shape.clone();
        let (kh, kw) = (ws.dim(2).clone(), ws.dim(3).clone());
        let kh = kh.as_const().expect("kernel dims must be constant").num() as u64;
        let kw = kw.as_const().expect("kernel dims must be constant").num() as u64;
        let xs = self.tensor(x).shape.clone();
        let oh = conv_out_dim(xs.dim(2), kh, stride, pad);
        let ow = conv_out_dim(xs.dim(3), kw, stride, pad);
        let shape = Shape::from(vec![xs.dim(0).clone(), ws.dim(0).clone(), oh, ow]);
        let kind = OpKind::Conv2d {
            kh,
            kw,
            stride,
            pad,
        };
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            kind,
            vec![x, w],
            vec![(oname, shape, DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// Unary pointwise function.
    pub fn unary(
        &mut self,
        name: &str,
        f: PointwiseFn,
        x: TensorId,
    ) -> Result<TensorId, GraphError> {
        assert_eq!(f.arity(), 1, "unary() requires a unary function");
        let shape = self.tensor(x).shape.clone();
        self.unary_out(
            name,
            OpKind::Pointwise(f),
            x,
            shape,
            TensorKind::Activation,
            Phase::Forward,
        )
    }

    /// Binary pointwise function (same-shape operands).
    pub fn binary(
        &mut self,
        name: &str,
        f: PointwiseFn,
        a: TensorId,
        b: TensorId,
    ) -> Result<TensorId, GraphError> {
        assert_eq!(f.arity(), 2, "binary() requires a binary function");
        let shape = self.tensor(a).shape.clone();
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            OpKind::Pointwise(f),
            vec![a, b],
            vec![(oname, shape, DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// Bias addition broadcast over the trailing dimension.
    pub fn bias_add(
        &mut self,
        name: &str,
        x: TensorId,
        b: TensorId,
    ) -> Result<TensorId, GraphError> {
        let shape = self.tensor(x).shape.clone();
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            OpKind::BiasAdd,
            vec![x, b],
            vec![(oname, shape, DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// Embedding lookup: `table[v,e]` gathered by integer `idx` of any rank.
    pub fn gather(
        &mut self,
        name: &str,
        table: TensorId,
        idx: TensorId,
    ) -> Result<TensorId, GraphError> {
        let e = self.tensor(table).shape.dim(1).clone();
        let mut dims = self.tensor(idx).shape.0.clone();
        dims.push(e);
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            OpKind::EmbeddingGather,
            vec![table, idx],
            vec![(oname, Shape(dims), DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// Softmax over the trailing dimension.
    pub fn softmax(&mut self, name: &str, x: TensorId) -> Result<TensorId, GraphError> {
        let shape = self.tensor(x).shape.clone();
        self.unary_out(
            name,
            OpKind::Softmax,
            x,
            shape,
            TensorKind::Activation,
            Phase::Forward,
        )
    }

    /// Batch normalization with trainable scale/shift folded into the op.
    pub fn batch_norm(
        &mut self,
        name: &str,
        x: TensorId,
        scale_shift: TensorId,
    ) -> Result<TensorId, GraphError> {
        let shape = self.tensor(x).shape.clone();
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            OpKind::BatchNorm,
            vec![x, scale_shift],
            vec![(oname, shape, DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// Square spatial pooling on NCHW input with symmetric padding.
    pub fn pool(
        &mut self,
        name: &str,
        kind: PoolKind,
        x: TensorId,
        k: u64,
        stride: u64,
        pad: u64,
    ) -> Result<TensorId, GraphError> {
        let xs = self.tensor(x).shape.clone();
        let oh = conv_out_dim(xs.dim(2), k, stride, pad);
        let ow = conv_out_dim(xs.dim(3), k, stride, pad);
        let shape = Shape::from(vec![xs.dim(0).clone(), xs.dim(1).clone(), oh, ow]);
        self.unary_out(
            name,
            OpKind::Pool { kind, k, stride },
            x,
            shape,
            TensorKind::Activation,
            Phase::Forward,
        )
    }

    /// Pooling over the time axis of a `[b, q, h]` tensor (sequence
    /// subsampling used by pyramidal speech encoders). Halves `q`.
    pub fn time_pool2(&mut self, name: &str, x: TensorId) -> Result<TensorId, GraphError> {
        let xs = self.tensor(x).shape.clone();
        let q = xs.dim(1).clone() * Expr::rat(1, 2);
        let shape = Shape::from(vec![xs.dim(0).clone(), q, xs.dim(2).clone()]);
        self.unary_out(
            name,
            OpKind::Pool {
                kind: PoolKind::Avg,
                k: 2,
                stride: 2,
            },
            x,
            shape,
            TensorKind::Activation,
            Phase::Forward,
        )
    }

    /// Full reduction to a scalar.
    pub fn reduce(
        &mut self,
        name: &str,
        kind: ReduceKind,
        x: TensorId,
    ) -> Result<TensorId, GraphError> {
        self.unary_out(
            name,
            OpKind::Reduce(kind),
            x,
            Shape::scalar(),
            TensorKind::Activation,
            Phase::Forward,
        )
    }

    /// Concatenate along `axis`.
    pub fn concat(
        &mut self,
        name: &str,
        xs: &[TensorId],
        axis: usize,
    ) -> Result<TensorId, GraphError> {
        assert!(!xs.is_empty(), "concat of no tensors");
        let first = self.tensor(xs[0]).shape.clone();
        let mut dims = first.0.clone();
        let mut cat: Expr = dims[axis].clone();
        for &x in &xs[1..] {
            cat = cat + self.tensor(x).shape.dim(axis).clone();
        }
        dims[axis] = cat;
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            OpKind::Concat,
            xs.to_vec(),
            vec![(oname, Shape(dims), DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// Split a tensor along `axis` into `n` equal parts.
    pub fn split(
        &mut self,
        name: &str,
        x: TensorId,
        axis: usize,
        n: u64,
    ) -> Result<Vec<TensorId>, GraphError> {
        let xs = self.tensor(x).shape.clone();
        let mut dims = xs.0.clone();
        dims[axis] = dims[axis].clone() * Expr::rat(1, n as i128);
        let dtype = self.tensor(x).dtype;
        let outputs: Vec<_> = (0..n)
            .map(|i| {
                (
                    self.auto_name(&format!("{name}_{i}")),
                    Shape(dims.clone()),
                    dtype,
                    TensorKind::Activation,
                )
            })
            .collect();
        self.add_op(
            name.to_owned(),
            OpKind::Split,
            vec![x],
            outputs,
            Phase::Forward,
        )
    }

    /// Metadata-only reshape.
    pub fn reshape(
        &mut self,
        name: &str,
        x: TensorId,
        shape: impl Into<Shape>,
    ) -> Result<TensorId, GraphError> {
        let shape = shape.into();
        self.unary_out(
            name,
            OpKind::Reshape,
            x,
            shape,
            TensorKind::Activation,
            Phase::Forward,
        )
    }

    /// Fused softmax + NLL loss against integer labels; scalar output.
    pub fn cross_entropy(
        &mut self,
        name: &str,
        logits: TensorId,
        labels: TensorId,
    ) -> Result<TensorId, GraphError> {
        let oname = self.auto_name(name);
        let out = self.add_op(
            name.to_owned(),
            OpKind::CrossEntropy,
            vec![logits, labels],
            vec![(oname, Shape::scalar(), DType::F32, TensorKind::Activation)],
            Phase::Forward,
        )?;
        Ok(out[0])
    }

    /// Validate all structural invariants (names, producers, operand shapes,
    /// topological op order).
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut produced = vec![false; self.tensors.len()];
        for op in &self.ops {
            for &i in &op.inputs {
                if i.index() >= self.tensors.len() {
                    return Err(GraphError::UnknownTensor(i));
                }
                // Topological order: inputs must be source tensors or already
                // produced.
                if self.producer[i.index()].is_some() && !produced[i.index()] {
                    return Err(GraphError::ShapeMismatch {
                        op: op.name.clone(),
                        detail: "op consumes a tensor produced later (not topological)".into(),
                    });
                }
            }
            self.check_operands(&op.name, &op.kind, &op.inputs)?;
            for &o in &op.outputs {
                if produced[o.index()] {
                    return Err(GraphError::MultipleProducers(o));
                }
                produced[o.index()] = true;
                if self.producer[o.index()] != Some(op.id) {
                    return Err(GraphError::MultipleProducers(o));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symath::Bindings;

    #[test]
    fn builds_and_validates_a_tiny_mlp() {
        let mut g = Graph::new("mlp");
        let b = Expr::sym("g_b");
        let x = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let w1 = g.weight("w1", [Expr::int(64), Expr::int(128)]).unwrap();
        let h = g.matmul("fc1", x, w1, false, false).unwrap();
        let h = g.unary("relu1", PointwiseFn::Relu, h).unwrap();
        let w2 = g.weight("w2", [Expr::int(128), Expr::int(10)]).unwrap();
        let logits = g.matmul("fc2", h, w2, false, false).unwrap();
        let labels = g.input("labels", [b.clone()], DType::I32).unwrap();
        let _loss = g.cross_entropy("loss", logits, labels).unwrap();
        g.validate().unwrap();
        assert_eq!(g.ops().len(), 4);
        assert_eq!(g.tensor(logits).shape, Shape::from([b, Expr::int(10)]));
    }

    #[test]
    fn rejects_contraction_mismatch() {
        let mut g = Graph::new("bad");
        let a = g
            .input("a", [Expr::int(4), Expr::int(8)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(9), Expr::int(2)]).unwrap();
        let err = g.matmul("mm", a, w, false, false).unwrap_err();
        assert!(matches!(err, GraphError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut g = Graph::new("dup");
        g.input("x", [Expr::int(1)], DType::F32).unwrap();
        let err = g.input("x", [Expr::int(2)], DType::F32).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateName(_)));
    }

    #[test]
    fn concat_sums_axis_dims() {
        let mut g = Graph::new("cat");
        let a = g
            .input("a", [Expr::int(2), Expr::int(3)], DType::F32)
            .unwrap();
        let b = g
            .input("b", [Expr::int(2), Expr::int(5)], DType::F32)
            .unwrap();
        let c = g.concat("cat", &[a, b], 1).unwrap();
        assert_eq!(g.tensor(c).shape, Shape::from([Expr::int(2), Expr::int(8)]));
    }

    #[test]
    fn split_divides_axis() {
        let mut g = Graph::new("split");
        let a = g
            .input("a", [Expr::int(2), Expr::int(12)], DType::F32)
            .unwrap();
        let parts = g.split("sp", a, 1, 4).unwrap();
        assert_eq!(parts.len(), 4);
        for &p in &parts {
            assert_eq!(g.tensor(p).shape, Shape::from([Expr::int(2), Expr::int(3)]));
        }
    }

    #[test]
    fn conv_shapes_and_flops() {
        let mut g = Graph::new("conv");
        let x = g
            .input(
                "x",
                [Expr::int(1), Expr::int(3), Expr::int(32), Expr::int(32)],
                DType::F32,
            )
            .unwrap();
        let w = g
            .weight(
                "w",
                [Expr::int(16), Expr::int(3), Expr::int(3), Expr::int(3)],
            )
            .unwrap();
        let y = g.conv2d("conv1", x, w, 1, 1).unwrap();
        assert_eq!(
            g.tensor(y).shape,
            Shape::from([Expr::int(1), Expr::int(16), Expr::int(32), Expr::int(32)])
        );
        g.validate().unwrap();
    }

    #[test]
    fn gather_appends_embedding_dim() {
        let mut g = Graph::new("emb");
        let t = g.weight("table", [Expr::int(1000), Expr::int(64)]).unwrap();
        let idx = g
            .input("idx", [Expr::sym("g_b2"), Expr::int(20)], DType::I32)
            .unwrap();
        let e = g.gather("lookup", t, idx).unwrap();
        assert_eq!(
            g.tensor(e).shape,
            Shape::from([Expr::sym("g_b2"), Expr::int(20), Expr::int(64)])
        );
    }

    #[test]
    fn consumer_and_producer_indexes() {
        let mut g = Graph::new("idx");
        let a = g
            .input("a", [Expr::int(4), Expr::int(4)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(4), Expr::int(4)]).unwrap();
        let y = g.matmul("mm", a, w, false, false).unwrap();
        let z = g.unary("relu", PointwiseFn::Relu, y).unwrap();
        assert_eq!(g.producer(a), None);
        assert_eq!(g.producer(y), Some(g.ops()[0].id()));
        assert_eq!(g.consumers(y).len(), 1);
        assert_eq!(g.consumers(z).len(), 0);
        assert_eq!(g.consumers(w), g.consumers(a));
    }

    #[test]
    fn time_pool_halves_sequence() {
        let mut g = Graph::new("tp");
        let x = g
            .input(
                "x",
                [Expr::int(8), Expr::int(100), Expr::int(32)],
                DType::F32,
            )
            .unwrap();
        let y = g.time_pool2("pool", x).unwrap();
        assert_eq!(
            g.tensor(y).shape,
            Shape::from([Expr::int(8), Expr::int(50), Expr::int(32)])
        );
        let _ = Bindings::new();
    }
}
