//! Graph introspection and export: op censuses, per-phase summaries, and
//! Graphviz DOT rendering (the Catamount artifact's graph-inspection role).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::graph::Graph;
use crate::op::Phase;
use crate::tensor::TensorKind;

/// Counts of ops by kind name and phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpCensus {
    /// `(kind label, phase)` → count.
    pub counts: BTreeMap<(String, Phase), usize>,
}

impl OpCensus {
    /// Total ops counted.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Ops in one phase.
    pub fn phase_total(&self, phase: Phase) -> usize {
        self.counts
            .iter()
            .filter(|((_, p), _)| *p == phase)
            .map(|(_, c)| c)
            .sum()
    }

    /// Render as sorted `kind phase count` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ((kind, phase), count) in &self.counts {
            let _ = writeln!(out, "{kind:<24} {phase:?}: {count}");
        }
        out
    }
}

/// Short label for an op kind (discriminant name only).
fn kind_label(kind: &crate::op::OpKind) -> String {
    let debug = format!("{kind:?}");
    debug
        .split([' ', '(', '{'])
        .next()
        .unwrap_or(&debug)
        .to_owned()
}

impl Graph {
    /// Count ops by kind and phase.
    pub fn op_census(&self) -> OpCensus {
        let mut census = OpCensus::default();
        for op in self.ops() {
            *census
                .counts
                .entry((kind_label(&op.kind), op.phase))
                .or_insert(0) += 1;
        }
        census
    }

    /// Render the graph in Graphviz DOT format. Ops are boxes (colored by
    /// phase), tensors are ellipses (weights shaded); edges follow dataflow.
    /// Intended for small graphs or extracted subgraphs — a frontier LSTM
    /// renders, but no one should have to look at it.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(&self.name));
        let _ = writeln!(out, "  rankdir=TB;");
        for t in self.tensors() {
            let (shape_attr, fill) = match t.kind {
                TensorKind::Weight => ("ellipse", "lightblue"),
                TensorKind::Input => ("ellipse", "lightyellow"),
                TensorKind::OptimizerState => ("ellipse", "lightcyan"),
                _ => ("ellipse", "white"),
            };
            let _ = writeln!(
                out,
                "  t{} [label=\"{}\\n{}\" shape={} style=filled fillcolor={}];",
                t.id().index(),
                escape(&t.name),
                escape(&t.shape.to_string()),
                shape_attr,
                fill
            );
        }
        for op in self.ops() {
            let color = match op.phase {
                Phase::Forward => "palegreen",
                Phase::Backward => "lightsalmon",
                Phase::Update => "plum",
            };
            let _ = writeln!(
                out,
                "  o{} [label=\"{}\" shape=box style=filled fillcolor={}];",
                op.id().index(),
                escape(&op.name),
                color
            );
            for &i in &op.inputs {
                let _ = writeln!(out, "  t{} -> o{};", i.index(), op.id().index());
            }
            for &o in &op.outputs {
                let _ = writeln!(out, "  o{} -> t{};", op.id().index(), o.index());
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autodiff::build_training_step;
    use crate::op::PointwiseFn;
    use crate::tensor::DType;
    use symath::Expr;

    fn tiny() -> Graph {
        let mut g = Graph::new("export\"test");
        let b = Expr::sym("ex_b");
        let x = g.input("x", [b.clone(), Expr::int(8)], DType::F32).unwrap();
        let w = g.weight("w", [Expr::int(8), Expr::int(8)]).unwrap();
        let h = g.matmul("fc", x, w, false, false).unwrap();
        let h = g.unary("relu", PointwiseFn::Relu, h).unwrap();
        let labels = g.input("y", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", h, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        g
    }

    #[test]
    fn census_counts_every_op_once() {
        let g = tiny();
        let census = g.op_census();
        assert_eq!(census.total(), g.ops().len());
        assert!(census.phase_total(Phase::Forward) >= 3);
        assert!(census.phase_total(Phase::Backward) >= 3);
        assert_eq!(census.phase_total(Phase::Update), 1);
        assert!(census.render().contains("MatMul"));
    }

    #[test]
    fn census_kind_labels_strip_payloads() {
        let g = tiny();
        let census = g.op_census();
        for (kind, _) in census.counts.keys() {
            assert!(
                !kind.contains('{') && !kind.contains(' '),
                "label `{kind}` should be bare"
            );
        }
    }

    #[test]
    fn dot_mentions_every_node_and_escapes_quotes() {
        let g = tiny();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph \"export\\\"test\""));
        for t in g.tensors() {
            assert!(dot.contains(&format!("t{} ", t.id().index())));
        }
        for op in g.ops() {
            assert!(dot.contains(&format!("o{} ", op.id().index())));
        }
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_edge_count_matches_graph_arity() {
        let g = tiny();
        let dot = g.to_dot();
        let expected: usize = g
            .ops()
            .iter()
            .map(|o| o.inputs.len() + o.outputs.len())
            .sum();
        let arrows = dot.matches(" -> ").count();
        assert_eq!(arrows, expected);
    }
}
