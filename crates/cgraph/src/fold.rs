//! Repeated-subgraph folding: group cost-identical ops into classes.
//!
//! Unrolled models repeat the same block many times — an LSTM cell per
//! timestep, an RHN sublayer per (timestep, depth), a residual block per
//! stage. Every op's algorithmic cost ([`op_flops`](crate::op::op_flops) /
//! [`op_bytes`](crate::op::op_bytes)) is a pure function of its kind, phase,
//! and operand `(shape, dtype)` signatures, so two ops with equal signatures
//! have *identical* symbolic cost expressions. Folding characterizes one
//! representative per class and scales by the class size.
//!
//! This is exact, not approximate: `symath` expressions are kept in a
//! canonical sum-of-terms form with exact rational coefficients, so
//! `multiplicity × cost` equals `cost + cost + …` term for term, and the
//! folded [`Graph::stats`](crate::graph::Graph) totals are the same `Expr` —
//! hence bit-identical on evaluation — as the op-by-op walk
//! (`stats_unfolded`).

use std::collections::HashMap;

use symath::ExprId;

use crate::graph::Graph;
use crate::op::{OpId, OpKind, Phase};
use crate::tensor::DType;

/// One class of cost-identical ops.
#[derive(Clone, Debug)]
pub struct FoldClass {
    /// Representative op (the first of the class in program order).
    pub rep: OpId,
    /// Number of ops in the class (≥ 1).
    pub count: u64,
}

/// The folding of a graph's op list into cost classes.
#[derive(Clone, Debug)]
pub struct FoldReport {
    /// Classes in first-appearance order.
    pub classes: Vec<FoldClass>,
    /// Total op count (`Σ classes[i].count`).
    pub ops: usize,
}

impl FoldReport {
    /// Fold compression ratio `ops / classes` (1.0 = nothing repeated).
    pub fn compression(&self) -> f64 {
        if self.classes.is_empty() {
            1.0
        } else {
            self.ops as f64 / self.classes.len() as f64
        }
    }
}

/// An op's cost signature: everything the per-op cost model reads. Operand
/// tensors are reduced to interned `(shape, dtype)` class ids, so signature
/// construction is two small `Vec`s per op instead of deep shape clones.
#[derive(Clone, PartialEq, Eq, Hash)]
struct OpSig {
    kind: OpKind,
    phase: Phase,
    ins: Vec<u32>,
    outs: Vec<u32>,
}

/// Group the graph's ops into cost-identical classes.
pub fn fold_classes(graph: &Graph) -> FoldReport {
    // Intern each tensor's (shape, dtype) once; ops then compare by class id.
    // Dimensions go through the `symath` hash-consing table, so the class key
    // is a short id vector — no deep shape clones, no tree re-hashing.
    let mut shape_ids: HashMap<(Vec<ExprId>, DType), u32> = HashMap::new();
    let mut tensor_sig: Vec<u32> = Vec::with_capacity(graph.tensors().len());
    for t in graph.tensors() {
        let dims: Vec<ExprId> = t.shape.0.iter().map(|d| d.interned()).collect();
        let next = shape_ids.len() as u32;
        let id = *shape_ids.entry((dims, t.dtype)).or_insert(next);
        tensor_sig.push(id);
    }

    let mut class_of: HashMap<OpSig, usize> = HashMap::new();
    let mut classes: Vec<FoldClass> = Vec::new();
    for op in graph.ops() {
        let sig = OpSig {
            kind: op.kind.clone(),
            phase: op.phase,
            ins: op.inputs.iter().map(|t| tensor_sig[t.index()]).collect(),
            outs: op.outputs.iter().map(|t| tensor_sig[t.index()]).collect(),
        };
        match class_of.get(&sig) {
            Some(&i) => classes[i].count += 1,
            None => {
                class_of.insert(sig, classes.len());
                classes.push(FoldClass {
                    rep: op.id(),
                    count: 1,
                });
            }
        }
    }
    FoldReport {
        classes,
        ops: graph.ops().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::op::PointwiseFn;
    use crate::tensor::DType;
    use symath::Expr;

    /// An unrolled chain: `q` identical (matmul, tanh) steps.
    fn unrolled(q: usize) -> Graph {
        let mut g = Graph::new("unrolled");
        let b = Expr::sym("fold_b");
        let mut t = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(64), Expr::int(64)]).unwrap();
        for i in 0..q {
            t = g.matmul(&format!("fc{i}"), t, w, false, false).unwrap();
            t = g.unary(&format!("act{i}"), PointwiseFn::Tanh, t).unwrap();
        }
        g
    }

    #[test]
    fn repeated_steps_fold_to_two_classes() {
        let g = unrolled(16);
        let fold = fold_classes(&g);
        assert_eq!(fold.ops, 32);
        assert_eq!(fold.classes.len(), 2);
        assert_eq!(fold.classes[0].count, 16);
        assert_eq!(fold.classes[1].count, 16);
        assert!((fold.compression() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_shapes_do_not_fold() {
        let mut g = Graph::new("distinct");
        let a = g
            .input("a", [Expr::int(4), Expr::int(8)], DType::F32)
            .unwrap();
        let b = g
            .input("b", [Expr::int(4), Expr::int(16)], DType::F32)
            .unwrap();
        let _ = g.unary("ra", PointwiseFn::Relu, a).unwrap();
        let _ = g.unary("rb", PointwiseFn::Relu, b).unwrap();
        let fold = fold_classes(&g);
        assert_eq!(fold.classes.len(), 2);
    }

    #[test]
    fn phase_splits_classes() {
        use crate::autodiff::build_training_step;
        let mut g = unrolled(4);
        let last = g.ops().last().unwrap().outputs[0];
        let labels = g
            .input("labels", [Expr::sym("fold_b")], DType::I32)
            .unwrap();
        let loss = g.cross_entropy("loss", last, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let fold = fold_classes(&g);
        // Forward and backward versions of the repeated step must not merge.
        let phases: std::collections::HashSet<_> =
            fold.classes.iter().map(|c| g.op(c.rep).phase).collect();
        assert_eq!(phases.len(), 3, "classes span all three phases");
        assert!(fold.classes.len() < fold.ops, "training unroll still folds");
    }

    #[test]
    fn folded_stats_equal_unfolded_exactly() {
        use crate::autodiff::build_training_step;
        let mut g = unrolled(8);
        let last = g.ops().last().unwrap().outputs[0];
        let labels = g
            .input("labels", [Expr::sym("fold_b")], DType::I32)
            .unwrap();
        let loss = g.cross_entropy("loss", last, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
        let folded = g.stats();
        let brute = g.stats_unfolded();
        // Canonical Exprs: structural equality ⇒ bit-identical evaluation.
        assert_eq!(folded.flops, brute.flops);
        assert_eq!(folded.flops_forward, brute.flops_forward);
        assert_eq!(folded.flops_backward, brute.flops_backward);
        assert_eq!(folded.flops_update, brute.flops_update);
        assert_eq!(folded.bytes, brute.bytes);
        assert_eq!(folded.bytes_read, brute.bytes_read);
        assert_eq!(folded.bytes_written, brute.bytes_written);
        assert_eq!(folded.params, brute.params);
        assert_eq!(folded.io, brute.io);
    }
}
