//! `cgraph` — a deep-learning compute-graph IR with an algorithmic cost
//! model.
//!
//! This crate reimplements, from scratch in Rust, the graph-analysis core of
//! the Catamount artifact from Hestness et al., *Beyond Human-Level
//! Accuracy: Computational Challenges in Deep Learning* (PPoPP 2019):
//!
//! * build training-step compute graphs with **symbolic tensor shapes**
//!   ([`Graph`], [`Shape`], backed by [`symath`]),
//! * derive the backward pass structurally via [`build_training_step`]
//!   (a matmul's backward is two matmuls, so cost ratios are emergent),
//! * query **algorithmic FLOPs / bytes / IO** per op or per graph
//!   ([`Graph::stats`]), and
//! * estimate the **minimal memory footprint** by simulating topological
//!   traversals ([`footprint`]).
//!
//! # Example
//!
//! ```
//! use cgraph::{Graph, DType, PointwiseFn, build_training_step};
//! use symath::{Bindings, Expr};
//!
//! let mut g = Graph::new("tiny");
//! let b = Expr::sym("batch");
//! let x = g.input("x", [b.clone(), Expr::int(32)], DType::F32).unwrap();
//! let w = g.weight("w", [Expr::int(32), Expr::int(10)]).unwrap();
//! let logits = g.matmul("fc", x, w, false, false).unwrap();
//! let labels = g.input("y", [b], DType::I32).unwrap();
//! let loss = g.cross_entropy("loss", logits, labels).unwrap();
//! build_training_step(&mut g, loss).unwrap();
//!
//! let n = g.stats().eval(&Bindings::new().with("batch", 64.0)).unwrap();
//! assert_eq!(n.params, 320.0);
//! assert!(n.flops_backward > 0.0); // backward ops were generated
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod autodiff;
mod export;
mod fold;
mod footprint;
mod graph;
mod op;
mod profile;
mod stats;
mod tensor;
mod transform;

pub use autodiff::{build_training_step, TrainingStep};
pub use export::OpCensus;
pub use fold::{fold_classes, FoldClass, FoldReport};
pub use footprint::{
    footprint, footprint_reference, footprint_with, footprint_with_plan, footprint_with_sizes,
    tensor_sizes, FootprintPlan, FootprintReport, InPlacePolicy, Scheduler,
};
pub use graph::{Graph, GraphError};
pub use op::{
    conv_out_dim, op_bytes, op_flops, Op, OpId, OpKind, Phase, PointwiseFn, PoolKind, ReduceKind,
};
pub use profile::{kind_label, layer_key, phase_label, CostGroup, OpCost, OpProfile};
pub use stats::{
    ForwardStats, GraphStats, InternedForwardStats, InternedGraphStats, NumericForwardStats,
    NumericStats,
};
pub use tensor::{DType, Shape, Tensor, TensorId, TensorKind};
pub use transform::{apply_optimizer, cast_float_precision, optimizer_state_bytes, Optimizer};
