//! Property-based tests over randomly generated compute graphs: builder,
//! autodiff, cost-model, and footprint invariants that must hold for *any*
//! well-formed DAG, not just the model zoo's.

use cgraph::{build_training_step, footprint, DType, Graph, PointwiseFn, Scheduler, TensorId};
use proptest::prelude::*;
use symath::{Bindings, Expr};

/// One randomly chosen layer appended to a growing chain.
#[derive(Clone, Copy, Debug)]
enum LayerChoice {
    Dense { width: u64 },
    Pointwise(u8),
    ResidualPair { width: u64 },
    SplitJoin,
}

fn arb_layer() -> impl Strategy<Value = LayerChoice> {
    prop_oneof![
        (4u64..64).prop_map(|w| LayerChoice::Dense { width: w * 2 }),
        (0u8..4).prop_map(LayerChoice::Pointwise),
        (4u64..32).prop_map(|w| LayerChoice::ResidualPair { width: w * 2 }),
        Just(LayerChoice::SplitJoin),
    ]
}

fn pointwise_of(i: u8) -> PointwiseFn {
    match i % 4 {
        0 => PointwiseFn::Relu,
        1 => PointwiseFn::Tanh,
        2 => PointwiseFn::Sigmoid,
        _ => PointwiseFn::Exp,
    }
}

/// Build a random feed-forward graph ending in a cross-entropy loss.
fn build_random_graph(layers: &[LayerChoice], in_width: u64) -> (Graph, TensorId) {
    let mut g = Graph::new("prop_graph");
    let b = Expr::sym("prop_b");
    let mut t = g
        .input("x", [b.clone(), Expr::from(in_width)], DType::F32)
        .expect("input");
    let mut width = in_width;
    for (i, layer) in layers.iter().enumerate() {
        match layer {
            LayerChoice::Dense { width: out } => {
                let w = g
                    .weight(format!("w{i}"), [Expr::from(width), Expr::from(*out)])
                    .expect("weight");
                t = g
                    .matmul(&format!("fc{i}"), t, w, false, false)
                    .expect("matmul");
                width = *out;
            }
            LayerChoice::Pointwise(f) => {
                t = g
                    .unary(&format!("pw{i}"), pointwise_of(*f), t)
                    .expect("pointwise");
            }
            LayerChoice::ResidualPair { width: mid } => {
                let w1 = g
                    .weight(format!("rw{i}a"), [Expr::from(width), Expr::from(*mid)])
                    .expect("weight");
                let w2 = g
                    .weight(format!("rw{i}b"), [Expr::from(*mid), Expr::from(width)])
                    .expect("weight");
                let h = g
                    .matmul(&format!("res{i}a"), t, w1, false, false)
                    .expect("mm");
                let h = g
                    .unary(&format!("res{i}r"), PointwiseFn::Relu, h)
                    .expect("relu");
                let h = g
                    .matmul(&format!("res{i}b"), h, w2, false, false)
                    .expect("mm");
                t = g
                    .binary(&format!("res{i}add"), PointwiseFn::Add, h, t)
                    .expect("residual");
            }
            LayerChoice::SplitJoin => {
                if !width.is_multiple_of(2) {
                    continue;
                }
                let parts = g.split(&format!("sp{i}"), t, 1, 2).expect("split");
                let a = g
                    .unary(&format!("sp{i}a"), PointwiseFn::Tanh, parts[0])
                    .expect("pw");
                let c = g
                    .binary(&format!("sp{i}m"), PointwiseFn::Mul, a, parts[1])
                    .expect("mul");
                t = g
                    .concat(&format!("sp{i}cat"), &[c, parts[1]], 1)
                    .expect("cat");
            }
        }
    }
    let labels = g.input("labels", [b], DType::I32).expect("labels");
    let loss = g.cross_entropy("loss", t, labels).expect("loss");
    (g, loss)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random forward graph validates, differentiates, and still
    /// validates afterwards.
    #[test]
    fn random_graphs_differentiate(
        layers in prop::collection::vec(arb_layer(), 1..10),
        in_width in (4u64..32).prop_map(|w| w * 2),
    ) {
        let (mut g, loss) = build_random_graph(&layers, in_width);
        prop_assert!(g.validate().is_ok());
        let step = build_training_step(&mut g, loss).expect("differentiable");
        prop_assert!(g.validate().is_ok());
        // Every weight got exactly one update.
        let weights = g
            .tensors()
            .iter()
            .filter(|t| t.kind == cgraph::TensorKind::Weight)
            .count();
        prop_assert_eq!(step.update_ops, weights);
    }

    /// Backward FLOPs never exceed 2× forward plus pointwise slack, and the
    /// total cost summary is internally consistent.
    #[test]
    fn cost_invariants(
        layers in prop::collection::vec(arb_layer(), 1..8),
        batch in 1u64..32,
    ) {
        let (mut g, loss) = build_random_graph(&layers, 16);
        build_training_step(&mut g, loss).expect("diff");
        let n = g
            .stats()
            .eval(&Bindings::new().with("prop_b", batch as f64))
            .expect("bound");
        prop_assert!(n.flops >= 0.0 && n.bytes > 0.0);
        prop_assert!(n.bytes_read + n.bytes_written == n.bytes);
        prop_assert!(n.flops_forward > 0.0);
        // Backward ≤ ~2.6× forward: 2× for matmuls plus pointwise-grad and
        // accumulation overheads.
        prop_assert!(
            n.flops_backward <= 2.6 * n.flops_forward + 1.0,
            "bwd {} vs fwd {}",
            n.flops_backward,
            n.flops_forward
        );
    }

    /// Footprint invariants: Best ≤ ProgramOrder; the peak covers the
    /// persistent set; footprint is monotone in batch.
    #[test]
    fn footprint_invariants(
        layers in prop::collection::vec(arb_layer(), 1..8),
        batch in 1u64..16,
    ) {
        let (mut g, loss) = build_random_graph(&layers, 16);
        build_training_step(&mut g, loss).expect("diff");
        let bind = |b: u64| Bindings::new().with("prop_b", b as f64);
        let po = footprint(&g, &bind(batch), Scheduler::ProgramOrder).expect("bound");
        let best = footprint(&g, &bind(batch), Scheduler::Best).expect("bound");
        prop_assert!(best.peak_bytes <= po.peak_bytes);
        prop_assert!(best.peak_bytes >= best.persistent_bytes);
        // Monotonicity in batch holds per *fixed* schedule (every live set
        // only grows). The Best estimate can dip when the greedy heuristic
        // finds a different schedule at the larger batch, so the guarantee
        // is stated for program order.
        let po_bigger = footprint(&g, &bind(batch + 1), Scheduler::ProgramOrder).expect("bound");
        prop_assert!(po_bigger.peak_bytes >= po.peak_bytes);
        // And Best at the larger batch still beats nothing: it is bounded by
        // its own program-order run.
        let bigger = footprint(&g, &bind(batch + 1), Scheduler::Best).expect("bound");
        prop_assert!(bigger.peak_bytes <= po_bigger.peak_bytes);
        // The peak is at least the largest single tensor.
        let largest = g
            .tensors()
            .iter()
            .map(|t| t.bytes_u64(&bind(batch)).expect("bound"))
            .max()
            .unwrap_or(0);
        prop_assert!(best.peak_bytes >= largest);
    }

    /// Costs are affine in the batch symbol for these feed-forward graphs.
    #[test]
    fn costs_affine_in_batch(layers in prop::collection::vec(arb_layer(), 1..8)) {
        let (mut g, loss) = build_random_graph(&layers, 16);
        build_training_step(&mut g, loss).expect("diff");
        let stats = g.stats();
        let at = |b: f64| stats.flops.eval(&Bindings::new().with("prop_b", b)).expect("bound");
        let (f1, f2, f9) = (at(1.0), at(2.0), at(9.0));
        let predicted = f1 + 8.0 * (f2 - f1);
        prop_assert!((f9 - predicted).abs() <= 1e-6 * f9.max(1.0));
    }

    /// The DOT export stays structurally consistent on arbitrary graphs.
    #[test]
    fn dot_export_consistent(layers in prop::collection::vec(arb_layer(), 1..6)) {
        let (mut g, loss) = build_random_graph(&layers, 16);
        build_training_step(&mut g, loss).expect("diff");
        let dot = g.to_dot();
        let expected_edges: usize = g.ops().iter().map(|o| o.inputs.len() + o.outputs.len()).sum();
        prop_assert_eq!(dot.matches(" -> ").count(), expected_edges);
        let census = g.op_census();
        prop_assert_eq!(census.total(), g.ops().len());
    }
}
