//! Hand-checked algorithmic cost rules for every op kind (paper §2.1):
//! each test computes the expected FLOPs/bytes from the op's definition and
//! compares against the cost model through a real graph.

use cgraph::{
    build_training_step, DType, Graph, OpKind, PointwiseFn, PoolKind, ReduceKind, TensorId,
};
use symath::{Bindings, Expr};

fn flops_of(g: &Graph, name: &str) -> f64 {
    let op = g
        .ops()
        .iter()
        .find(|o| o.name == name)
        .unwrap_or_else(|| panic!("op `{name}` not found"));
    g.op_flops(op)
        .eval(&Bindings::new())
        .expect("constant shapes")
}

fn bytes_of(g: &Graph, name: &str) -> (f64, f64) {
    let op = g
        .ops()
        .iter()
        .find(|o| o.name == name)
        .unwrap_or_else(|| panic!("op `{name}` not found"));
    let (r, w) = g.op_bytes(op);
    (
        r.eval(&Bindings::new()).expect("constant"),
        w.eval(&Bindings::new()).expect("constant"),
    )
}

#[test]
fn softmax_and_cross_entropy_costs() {
    let mut g = Graph::new("sm");
    let x = g
        .input("x", [Expr::int(4), Expr::int(10)], DType::F32)
        .unwrap();
    let s = g.softmax("softmax", x).unwrap();
    let labels = g.input("y", [Expr::int(4)], DType::I32).unwrap();
    let _ = g.cross_entropy("ce", s, labels).unwrap();
    assert_eq!(flops_of(&g, "softmax"), 5.0 * 40.0);
    assert_eq!(flops_of(&g, "ce"), 5.0 * 40.0);
    let (r, w) = bytes_of(&g, "softmax");
    assert_eq!(r, 160.0);
    assert_eq!(w, 160.0);
}

#[test]
fn batch_norm_forward_and_backward_costs() {
    let mut g = Graph::new("bn");
    let x = g
        .input(
            "x",
            [Expr::int(2), Expr::int(3), Expr::int(4), Expr::int(4)],
            DType::F32,
        )
        .unwrap();
    let gamma = g.weight("gamma", [Expr::int(6)]).unwrap();
    let y = g.batch_norm("bn", x, gamma).unwrap();
    let pooled = g.pool("gap", PoolKind::Avg, y, 4, 4, 0).unwrap();
    let flat = g
        .reshape("flat", pooled, [Expr::int(2), Expr::int(3)])
        .unwrap();
    let labels = g.input("y_lbl", [Expr::int(2)], DType::I32).unwrap();
    let loss = g.cross_entropy("loss", flat, labels).unwrap();
    build_training_step(&mut g, loss).unwrap();
    let elems = 2.0 * 3.0 * 4.0 * 4.0;
    assert_eq!(flops_of(&g, "bn"), 8.0 * elems);
    // BatchNormGrad: 11 FLOPs per dX element.
    let grad_name = g
        .ops()
        .iter()
        .find(|o| matches!(o.kind, OpKind::BatchNormGrad))
        .map(|o| o.name.clone())
        .expect("bn grad present");
    assert_eq!(flops_of(&g, &grad_name), 11.0 * elems);
}

#[test]
fn pooling_costs_count_window_volume() {
    let mut g = Graph::new("pool");
    let x = g
        .input(
            "x",
            [Expr::int(1), Expr::int(2), Expr::int(8), Expr::int(8)],
            DType::F32,
        )
        .unwrap();
    let y = g.pool("maxpool", PoolKind::Max, x, 2, 2, 0).unwrap();
    // Output 1×2×4×4; 2×2 window per output element.
    assert_eq!(flops_of(&g, "maxpool"), 4.0 * (2.0 * 16.0));
    assert_eq!(g.tensor(y).shape.dim(2), &Expr::int(4));
}

#[test]
fn conv_backward_ops_match_forward_flops() {
    let mut g = Graph::new("convb");
    let x = g
        .input(
            "x",
            [Expr::int(2), Expr::int(4), Expr::int(8), Expr::int(8)],
            DType::F32,
        )
        .unwrap();
    let w = g
        .weight(
            "w",
            [Expr::int(8), Expr::int(4), Expr::int(3), Expr::int(3)],
        )
        .unwrap();
    let y = g.conv2d("conv", x, w, 1, 1).unwrap();
    let w2 = g
        .weight(
            "w2",
            [Expr::int(8), Expr::int(8), Expr::int(3), Expr::int(3)],
        )
        .unwrap();
    let y2 = g.conv2d("conv2", y, w2, 1, 1).unwrap();
    let gap = g.pool("gap", PoolKind::Avg, y2, 8, 8, 0).unwrap();
    let flat = g
        .reshape("flat", gap, [Expr::int(2), Expr::int(8)])
        .unwrap();
    let labels = g.input("lbl", [Expr::int(2)], DType::I32).unwrap();
    let loss = g.cross_entropy("loss", flat, labels).unwrap();
    build_training_step(&mut g, loss).unwrap();
    // conv2's dX and dW each cost exactly the forward conv2 FLOPs.
    let fwd = flops_of(&g, "conv2");
    let dx = g
        .ops()
        .iter()
        .find(|o| matches!(o.kind, OpKind::Conv2dBackpropInput { .. }))
        .map(|o| o.name.clone())
        .expect("dX present");
    let dw_names: Vec<String> = g
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Conv2dBackpropFilter { .. }))
        .map(|o| o.name.clone())
        .collect();
    assert_eq!(flops_of(&g, &dx), fwd);
    assert_eq!(dw_names.len(), 2); // one per conv
    assert_eq!(flops_of(&g, &dw_names[0]), fwd);
}

#[test]
fn reduce_and_broadcast_costs() {
    let mut g = Graph::new("red");
    let x = g
        .input("x", [Expr::int(6), Expr::int(7)], DType::F32)
        .unwrap();
    let w = g.weight("w", [Expr::int(7), Expr::int(7)]).unwrap();
    let h = g.matmul("mm", x, w, false, false).unwrap();
    let r = g.reduce("sum", ReduceKind::Sum, h).unwrap();
    assert_eq!(flops_of(&g, "sum"), 42.0);
    assert_eq!(g.tensor(r).shape.rank(), 0);
}

#[test]
fn transpose_moves_bytes_without_flops() {
    let mut g = Graph::new("tr");
    let x = g
        .input("x", [Expr::int(3), Expr::int(5)], DType::F32)
        .unwrap();
    let t = g
        .add_op(
            "transpose",
            OpKind::Transpose,
            vec![x],
            vec![(
                "xT".into(),
                [Expr::int(5), Expr::int(3)].into(),
                DType::F32,
                cgraph::TensorKind::Activation,
            )],
            cgraph::Phase::Forward,
        )
        .unwrap();
    assert_eq!(flops_of(&g, "transpose"), 0.0);
    let (r, w) = bytes_of(&g, "transpose");
    assert_eq!(r, 60.0);
    assert_eq!(w, 60.0);
    let _ = t;
}

#[test]
fn pointwise_grad_costs_one_more_flop_than_forward() {
    let mut g = Graph::new("pwg");
    let x = g
        .input("x", [Expr::int(8), Expr::int(8)], DType::F32)
        .unwrap();
    let w = g.weight("w", [Expr::int(8), Expr::int(8)]).unwrap();
    let h = g.matmul("mm", x, w, false, false).unwrap();
    let h = g.unary("tanh", PointwiseFn::Tanh, h).unwrap();
    let labels = g.input("lbl", [Expr::int(8)], DType::I32).unwrap();
    let loss = g.cross_entropy("loss", h, labels).unwrap();
    build_training_step(&mut g, loss).unwrap();
    let fwd = flops_of(&g, "tanh"); // 4 per element
    let grad = g
        .ops()
        .iter()
        .find(|o| matches!(o.kind, OpKind::PointwiseGrad(PointwiseFn::Tanh)))
        .map(|o| o.name.clone())
        .expect("tanh grad present");
    assert_eq!(flops_of(&g, &grad), fwd / 4.0 * 5.0); // (4 + 1) per element
}

#[test]
fn scatter_add_touches_rows_not_table() {
    let mut g = Graph::new("scat");
    let table = g
        .weight("table", [Expr::int(100_000), Expr::int(8)])
        .unwrap();
    let idx = g.input("idx", [Expr::int(4)], DType::I32).unwrap();
    let e = g.gather("lookup", table, idx).unwrap();
    let w = g.weight("w", [Expr::int(8), Expr::int(4)]).unwrap();
    let h = g.matmul("mm", e, w, false, false).unwrap();
    let labels = g.input("lbl", [Expr::int(4)], DType::I32).unwrap();
    let loss = g.cross_entropy("loss", h, labels).unwrap();
    build_training_step(&mut g, loss).unwrap();
    let scatter = g
        .ops()
        .iter()
        .find(|o| matches!(o.kind, OpKind::EmbeddingScatterAdd))
        .map(|o| o.name.clone())
        .expect("scatter present");
    // 4 rows × 8 wide: one accumulate per gathered element.
    assert_eq!(flops_of(&g, &scatter), 32.0);
    let (r, _w) = bytes_of(&g, &scatter);
    // Reads grad rows twice (accumulator + incoming) + indices; far below
    // the 3.2 MB table.
    assert!(r < 1000.0, "scatter read {r} bytes");
}

#[test]
fn update_op_costs_for_all_optimizers() {
    use cgraph::{apply_optimizer, Optimizer};
    for (opt, flops_per_param, read_x, write_x) in [
        (Optimizer::Sgd, 2.0, 2.0, 1.0),
        (Optimizer::Momentum, 4.0, 3.0, 2.0),
        (Optimizer::Adam, 10.0, 4.0, 3.0),
    ] {
        let mut g = Graph::new(format!("upd_{opt:?}"));
        let x = g
            .input("x", [Expr::int(4), Expr::int(16)], DType::F32)
            .unwrap();
        let w = g.weight("w", [Expr::int(16), Expr::int(16)]).unwrap();
        let h = g.matmul("mm", x, w, false, false).unwrap();
        let labels = g.input("lbl", [Expr::int(4)], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", h, labels).unwrap();
        let step = build_training_step(&mut g, loss).unwrap();
        apply_optimizer(&mut g, &step, opt).unwrap();
        let update = g
            .ops()
            .iter()
            .find(|o| {
                matches!(
                    o.kind,
                    OpKind::SgdUpdate | OpKind::MomentumUpdate | OpKind::AdamUpdate
                )
            })
            .map(|o| o.name.clone())
            .expect("update present");
        let p = 256.0;
        assert_eq!(flops_of(&g, &update), flops_per_param * p, "{opt:?}");
        let (r, wbytes) = bytes_of(&g, &update);
        assert_eq!(r, read_x * 4.0 * p, "{opt:?} reads");
        assert_eq!(wbytes, write_x * 4.0 * p, "{opt:?} writes");
    }
}

#[test]
fn addn_generalizes_to_many_operands() {
    let mut g = Graph::new("addn");
    let parts: Vec<TensorId> = (0..5)
        .map(|i| {
            g.input(format!("p{i}"), [Expr::int(10)], DType::F32)
                .unwrap()
        })
        .collect();
    let out = g
        .add_op(
            "addn",
            OpKind::AddN,
            parts,
            vec![(
                "sum".into(),
                [Expr::int(10)].into(),
                DType::F32,
                cgraph::TensorKind::Activation,
            )],
            cgraph::Phase::Backward,
        )
        .unwrap();
    assert_eq!(flops_of(&g, "addn"), 40.0); // (5-1) × 10
    let _ = out;
}
