//! Property tests for `parsim::search` plan invariants: memory feasibility,
//! Pareto non-domination, thread-count determinism, and monotonicity in
//! accelerator peak FLOP/s.

use proptest::prelude::*;

use parsim::{
    enumerate_naive, pow2_candidates, search, split_variants, CandidateProfile, CommConfig,
    SearchPoint, SearchSpace, Stage, WorkerStep,
};
use roofline::{roofline_time, Accelerator};

#[derive(Clone, Debug)]
struct ArbProfile {
    flops_mult: f64,
    bw_mult: f64,
    mem_gib: f64,
    interconnect: f64,
    alg_flops: f64,
    alg_bytes: f64,
    gradient_bytes: f64,
    samples_per_step: f64,
    stage_bytes: Vec<(f64, f64)>,
}

fn arb_profile() -> impl Strategy<Value = ArbProfile> {
    (
        (
            0.2f64..8.0,   // peak-FLOP/s multiplier on the V100 base
            0.5f64..4.0,   // bandwidth multiplier
            8.0f64..128.0, // HBM GiB
            (10e9f64..300e9),
        ),
        (
            1e12f64..2e15, // algorithmic FLOPs per step
            1e11f64..5e13, // algorithmic bytes per step
            1e9f64..60e9,  // gradient bytes
            1e2f64..1e4,   // samples per step
        ),
        proptest::collection::vec((0.5f64..40.0, 0.5f64..40.0), 1..5),
    )
        .prop_map(
            |(
                (flops_mult, bw_mult, mem_gib, interconnect),
                (alg_flops, alg_bytes, gradient_bytes, samples_per_step),
                stage_bytes,
            )| ArbProfile {
                flops_mult,
                bw_mult,
                mem_gib,
                interconnect,
                alg_flops,
                alg_bytes,
                gradient_bytes,
                samples_per_step,
                stage_bytes,
            },
        )
}

/// Materialize a profile: the accelerator is a scaled V100, the step's
/// compute time comes from the roofline (so FLOP/s monotonicity is a real
/// end-to-end property, not an assumption on hand-typed numbers).
fn build_profile(key: &str, p: &ArbProfile) -> CandidateProfile {
    let mut accel = Accelerator::v100_like();
    accel.name = format!("prop-{key}");
    accel.peak_flops *= p.flops_mult;
    accel.peak_mem_bw *= p.bw_mult;
    accel.mem_capacity = p.mem_gib * (1u64 << 30) as f64;
    accel.interconnect_bw = p.interconnect;
    let stages: Vec<Stage> = p
        .stage_bytes
        .iter()
        .enumerate()
        .map(|(i, &(w, a))| Stage {
            name: format!("s{i}"),
            weight_bytes: w * 1e9,
            activation_bytes: a * 1e9,
        })
        .collect();
    let footprint_bytes: f64 = stages
        .iter()
        .map(|s| s.weight_bytes + s.activation_bytes)
        .sum();
    CandidateProfile {
        accel_key: key.to_string(),
        subbatch: 64,
        step: WorkerStep {
            compute_seconds: roofline_time(p.alg_flops, p.alg_bytes, &accel).seconds,
            alg_flops: p.alg_flops,
            gradient_bytes: p.gradient_bytes,
            samples_per_step: p.samples_per_step,
        },
        footprint_bytes,
        stages,
        accel,
    }
}

fn build_space(
    profiles: Vec<CandidateProfile>,
    dataset: f64,
    days: f64,
    cap_pow: u32,
    micros: Vec<u64>,
) -> SearchSpace {
    let cap = 1u64 << cap_pow;
    SearchSpace {
        profiles,
        dataset_samples: dataset,
        target_epoch_days: days,
        usable_mem_fraction: 0.8,
        worker_candidates: pow2_candidates(cap),
        microbatch_candidates: micros,
        max_total_accelerators: cap,
        hop_overhead: CommConfig::default().hop_overhead,
    }
}

fn arb_space() -> impl Strategy<Value = SearchSpace> {
    (
        proptest::collection::vec(arb_profile(), 1..4),
        1e8f64..1e11,
        0.1f64..90.0,
        6u32..14,
        proptest::collection::vec(1u64..16, 1..3),
    )
        .prop_map(|(arbs, dataset, days, cap_pow, micros)| {
            let profiles = arbs
                .iter()
                .enumerate()
                .map(|(i, p)| build_profile(&format!("accel{i}"), p))
                .collect();
            build_space(profiles, dataset, days, cap_pow, micros)
        })
}

fn dominates(p: &SearchPoint, q: &SearchPoint) -> bool {
    let (a, b) = (&p.plan, &q.plan);
    a.epoch_days <= b.epoch_days
        && a.total_accelerators <= b.total_accelerators
        && a.mem_per_accel_gb <= b.mem_per_accel_gb
        && (a.epoch_days < b.epoch_days
            || a.total_accelerators < b.total_accelerators
            || a.mem_per_accel_gb < b.mem_per_accel_gb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every plan the search returns fits its accelerator's usable HBM —
    /// checked against the exact per-variant footprint, not the rounded GB
    /// report — and respects the fleet cap and the deadline.
    #[test]
    fn every_returned_plan_is_feasible(space in arb_space()) {
        let result = search(&space);
        for point in &result.feasible {
            let profile = space
                .profiles
                .iter()
                .find(|p| p.accel_key == point.accel_key)
                .expect("point's profile exists");
            let usable = profile.accel.mem_capacity * space.usable_mem_fraction;
            let variants = split_variants(
                &profile.stages,
                profile.footprint_bytes,
                profile.step.compute_seconds,
                &space.microbatch_candidates,
            );
            let variant = variants
                .iter()
                .find(|v| v.parallelism == point.parallelism)
                .expect("point's variant exists");
            prop_assert!(variant.mem_per_accel <= usable, "footprint over HBM");
            prop_assert!(point.plan.total_accelerators <= space.max_total_accelerators);
            prop_assert!(point.plan.epoch_days <= space.target_epoch_days);
            prop_assert_eq!(
                point.plan.total_accelerators,
                point.plan.dp_workers * point.plan.mp_ways
            );
        }
    }

    /// No point on the returned Pareto frontier is dominated by any
    /// feasible point (frontier membership is global, not frontier-local).
    #[test]
    fn pareto_contains_no_dominated_point(space in arb_space()) {
        let result = search(&space);
        for p in &result.pareto {
            for q in &result.feasible {
                prop_assert!(!dominates(q, p), "{q:?} dominates frontier point {p:?}");
            }
        }
        // And every non-frontier feasible point IS dominated by someone.
        for q in &result.feasible {
            if !result.pareto.contains(q) {
                prop_assert!(
                    result.feasible.iter().any(|p| dominates(p, q)),
                    "{q:?} undominated but off the frontier"
                );
            }
        }
    }

    /// The search returns identical results — every plan, every f64 —
    /// regardless of how many rayon threads evaluate it, and both match the
    /// sequential naive oracle. Checked on the generated space and on a
    /// profile-replicated blowup big enough to take the parallel path
    /// (small lattices are searched sequentially).
    #[test]
    fn search_is_deterministic_across_thread_counts(space in arb_space()) {
        let mut big = space.clone();
        let ladder = space.worker_candidates.len() * (1 + space.microbatch_candidates.len());
        let replicas = 16_384 / (space.profiles.len() * ladder) + 1;
        big.profiles = (0..replicas * space.profiles.len())
            .map(|i| {
                let mut p = space.profiles[i % space.profiles.len()].clone();
                p.accel_key = format!("{}-r{}", p.accel_key, i / space.profiles.len());
                p
            })
            .collect();
        for s in [&space, &big] {
            let naive = enumerate_naive(s);
            let mut results = Vec::new();
            for threads in ["1", "2", "5"] {
                std::env::set_var("RAYON_SHIM_THREADS", threads);
                results.push(search(s));
            }
            std::env::remove_var("RAYON_SHIM_THREADS");
            prop_assert_eq!(&results[0], &results[1]);
            prop_assert_eq!(&results[1], &results[2]);
            prop_assert_eq!(&results[0].feasible, &naive);
        }
    }

    /// The sorted-sweep Pareto frontier is bit-identical to the all-pairs
    /// reference on every feasible set the search can produce.
    #[test]
    fn pareto_sweep_matches_reference(space in arb_space()) {
        let result = search(&space);
        prop_assert_eq!(
            result.pareto,
            parsim::pareto_frontier_reference(&result.feasible)
        );
    }

    /// Raising ONLY the accelerator's peak FLOP/s never increases any
    /// matching plan's step time, and never shrinks the feasible set.
    #[test]
    fn more_peak_flops_never_slows_a_plan(
        arb in arb_profile(),
        dataset in 1e8f64..1e11,
        days in 0.1f64..90.0,
        boost in 1.0f64..16.0,
    ) {
        let slow = build_profile("base", &arb);
        let mut fast_arb = arb.clone();
        fast_arb.flops_mult *= boost;
        let fast = build_profile("base", &fast_arb);
        // Only the compute peak moved; memory and interconnect identical.
        prop_assert_eq!(slow.accel.mem_capacity, fast.accel.mem_capacity);
        prop_assert_eq!(slow.accel.interconnect_bw, fast.accel.interconnect_bw);
        prop_assert!(fast.step.compute_seconds <= slow.step.compute_seconds);

        let micros = vec![2u64];
        let slow_space = build_space(vec![slow], dataset, days, 10, micros.clone());
        let fast_space = build_space(vec![fast], dataset, days, 10, micros);
        let slow_result = search(&slow_space);
        let fast_result = search(&fast_space);

        let key = |p: &SearchPoint| (p.parallelism, p.plan.dp_workers);
        for sp in &slow_result.feasible {
            let matching = fast_result
                .feasible
                .iter()
                .find(|fp| key(fp) == key(sp));
            // Feasibility is monotone: a faster part keeps every plan.
            prop_assert!(matching.is_some(), "plan lost on faster part: {sp:?}");
            let fp = matching.expect("present");
            prop_assert!(
                fp.plan.step_seconds <= sp.plan.step_seconds,
                "step time rose with peak FLOP/s: {} -> {}",
                sp.plan.step_seconds,
                fp.plan.step_seconds
            );
        }
    }
}
