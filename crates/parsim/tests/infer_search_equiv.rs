//! Differential suite for `parsim::infer_search`: the pruned SLO search
//! must be bit-identical — same points, same `f64`s — to the naive
//! enumeration oracle over randomized serving spaces, its counters must
//! account for every lattice point, and a hand-built golden space must
//! produce the hand-checked argmin plan.

use parsim::{
    enumerate_infer_naive, infer_pareto_frontier_reference, infer_plan_point, infer_search,
    InferProfile, InferSearchSpace, SloTarget,
};
use proptest::prelude::*;
use roofline::Accelerator;

fn profile(key: &str, batch: u64, prefill_ms: f64, step_ms: f64, mem_gb: f64) -> InferProfile {
    InferProfile {
        accel_key: key.to_string(),
        accel: Accelerator::by_key(key).expect("registry key"),
        batch,
        prefill_seconds: prefill_ms / 1e3,
        decode_step_seconds: step_ms / 1e3,
        mem_bytes: mem_gb * 1e9,
    }
}

/// A golden space small enough to check by hand (worked in the comments).
fn golden_space() -> InferSearchSpace {
    InferSearchSpace {
        profiles: vec![
            // v100 @ batch 16: 10 ms step → 1600 tok/s per replica.
            profile("v100", 16, 40.0, 10.0, 10.0),
            // v100 @ batch 64: 25 ms step → 2560 tok/s per replica.
            profile("v100", 64, 60.0, 25.0, 14.0),
            // v100 @ batch 256: 80 ms step — misses the 50 ms token SLO.
            profile("v100", 256, 120.0, 80.0, 26.0),
            // a100 @ batch 64: 12 ms step → ~5333 tok/s per replica.
            profile("a100", 64, 30.0, 12.0, 14.0),
            // a100 @ batch 256: 40 ms step but 90 GB — over the A100's
            // 80 GiB × 0.8 usable memory.
            profile("a100", 256, 80.0, 40.0, 90.0),
        ],
        replica_candidates: vec![1, 2, 4, 8, 16],
        max_total_accelerators: 16,
        usable_mem_fraction: 0.8,
        slo: SloTarget {
            p99_token_seconds: 0.050,
            ttft_seconds: 0.250,
        },
        target_tokens_per_s: 10_000.0,
    }
}

#[test]
fn golden_space_produces_the_hand_checked_plan() {
    let space = golden_space();
    let result = infer_search(&space);

    // Hand count. Surviving profiles and their minimal feasible replicas:
    //   v100@16 (1600/replica): needs 8 → {8, 16}
    //   v100@64 (2560/replica): needs 4 → {4, 8, 16}
    //   a100@64 (5333/replica): needs 2 → {2, 4, 8, 16}
    // v100@256 dies on the latency floor, a100@256 on memory.
    assert_eq!(result.feasible.len(), 2 + 3 + 4);
    assert_eq!(result.stats.pruned_latency, 5, "v100@256's whole ladder");
    assert_eq!(result.stats.pruned_memory, 5, "a100@256's whole ladder");
    assert_eq!(result.stats.considered, 25);
    assert_eq!(result.stats.evaluated, 15);

    // The argmin is 2 × a100@64: fewest accelerators of any feasible point.
    let best = result.best.expect("feasible");
    assert_eq!(best.accel_key, "a100");
    assert_eq!(best.batch, 64);
    assert_eq!(best.replicas, 2);
    assert_eq!(best.total_accelerators, 2);
    // Its numbers are exactly the shared point evaluation's.
    assert_eq!(best, infer_plan_point(&space.profiles[3], 2));
    assert_eq!(best.tokens_per_s, 2.0 * 64.0 / 0.012);
    assert_eq!(best.p99_token_seconds, 0.012);
    assert_eq!(best.ttft_seconds, 0.030 + 0.012);
}

#[test]
fn golden_space_is_bit_identical_to_naive() {
    let space = golden_space();
    let result = infer_search(&space);
    assert_eq!(result.feasible, enumerate_infer_naive(&space));
    assert_eq!(
        result.pareto,
        infer_pareto_frontier_reference(&result.feasible)
    );
}

#[test]
fn infeasible_everywhere_is_empty_for_both_paths() {
    let mut space = golden_space();
    space.slo.ttft_seconds = 1e-9;
    let result = infer_search(&space);
    assert!(result.feasible.is_empty());
    assert!(result.pareto.is_empty());
    assert!(result.best.is_none());
    assert!(enumerate_infer_naive(&space).is_empty());
}

fn arb_profile() -> impl Strategy<Value = InferProfile> {
    (
        prop_oneof![Just("v100"), Just("a100"), Just("h100"), Just("tpu-v3")],
        0u32..9,
        1u64..400,
        1u64..3000,
        1u64..200,
    )
        .prop_map(|(key, batch_pow, prefill_ms, step_us, mem_gb)| {
            profile(
                key,
                1 << batch_pow,
                prefill_ms as f64,
                step_us as f64 / 10.0,
                mem_gb as f64,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over randomized spaces: pruned ≡ naive bitwise, the sweep Pareto
    /// frontier ≡ the all-pairs reference, and the counters account for
    /// every lattice point exactly once.
    #[test]
    fn randomized_spaces_prune_exactly(
        profiles in proptest::collection::vec(arb_profile(), 1..12),
        ladder_len in 1usize..8,
        max_total in 1u64..200,
        tpot_ms in 1u64..200,
        ttft_ms in 1u64..2000,
        target_kilo_tokens in 0u64..100,
    ) {
        let space = InferSearchSpace {
            profiles,
            replica_candidates: (0..ladder_len as u32).map(|i| 1u64 << i).collect(),
            max_total_accelerators: max_total,
            usable_mem_fraction: 0.8,
            slo: SloTarget {
                p99_token_seconds: tpot_ms as f64 / 1e3,
                ttft_seconds: ttft_ms as f64 / 1e3,
            },
            target_tokens_per_s: target_kilo_tokens as f64 * 1e3,
        };
        let result = infer_search(&space);
        prop_assert_eq!(&result.feasible, &enumerate_infer_naive(&space));
        prop_assert_eq!(
            &result.pareto,
            &infer_pareto_frontier_reference(&result.feasible)
        );
        let s = result.stats;
        prop_assert_eq!(
            s.considered,
            s.evaluated + s.pruned_memory + s.pruned_latency + s.pruned_over_cap
        );
        prop_assert_eq!(
            s.considered,
            (space.profiles.len() * space.replica_candidates.len()) as u64
        );
        // Determinism: a second run is identical.
        prop_assert_eq!(result, infer_search(&space));
    }
}
