//! Differential suite for `parsim::search`: the pruned search must be
//! bit-identical — same plans, same `f64` times — to (a) the naive
//! enumeration oracle and (b) a triple loop over `planner::plan`, and the
//! V100-only search must reproduce the existing Table 5 golden plan
//! exactly.

use parsim::{
    enumerate_naive, plan, pow2_candidates, search, CandidateProfile, CommConfig, ModelParallelism,
    Plan, PlanRequest, SearchPoint, SearchSpace, Stage, WorkerStep,
};
use roofline::Accelerator;

fn gb(x: f64) -> f64 {
    x * 1e9
}

/// The §6 case study as a planning problem — copied from the planner's own
/// golden fixture so the two suites pin the same point.
fn case_study_request(target_days: f64) -> PlanRequest {
    let step = WorkerStep {
        compute_seconds: 17.07,
        alg_flops: 123e12,
        gradient_bytes: 33.6e9,
        samples_per_step: 128.0 * 25.45,
    };
    let stages = vec![
        Stage {
            name: "embedding".into(),
            weight_bytes: gb(59.5),
            activation_bytes: gb(0.5),
        },
        Stage {
            name: "lstm0".into(),
            weight_bytes: gb(4.3),
            activation_bytes: gb(12.7),
        },
        Stage {
            name: "lstm1".into(),
            weight_bytes: gb(4.3),
            activation_bytes: gb(12.7),
        },
        Stage {
            name: "out".into(),
            weight_bytes: gb(13.0),
            activation_bytes: gb(19.0),
        },
    ];
    let dataset = 4671.0 * 86_400.0 / 17.07 * 128.0 * 25.45;
    let mut req = PlanRequest::new(step, gb(113.8), stages, dataset, target_days);
    // The paper places stages against the full 32 GB capacity.
    req.usable_mem_fraction = 1.0;
    req
}

/// A search space holding exactly the case study on the given accelerators.
fn case_study_space(target_days: f64, accels: &[(&str, Accelerator)]) -> SearchSpace {
    let req = case_study_request(target_days);
    let profiles = accels
        .iter()
        .map(|(key, accel)| CandidateProfile {
            accel_key: key.to_string(),
            accel: accel.clone(),
            subbatch: 128,
            step: req.step,
            footprint_bytes: req.footprint_bytes,
            stages: req.stages.clone(),
        })
        .collect();
    SearchSpace {
        profiles,
        dataset_samples: req.dataset_samples,
        target_epoch_days: target_days,
        usable_mem_fraction: req.usable_mem_fraction,
        worker_candidates: req.worker_candidates.clone(),
        microbatch_candidates: vec![2],
        max_total_accelerators: u64::MAX,
        hop_overhead: CommConfig::default().hop_overhead,
    }
}

/// Combine per-request planner answers with the planner's own comparison
/// (fewest total accelerators, ties to higher utilization).
fn fold_best(candidates: impl IntoIterator<Item = Option<Plan>>) -> Option<Plan> {
    let mut best: Option<Plan> = None;
    for candidate in candidates.into_iter().flatten() {
        let better = match &best {
            None => true,
            Some(b) => {
                candidate.total_accelerators < b.total_accelerators
                    || (candidate.total_accelerators == b.total_accelerators
                        && candidate.flop_utilization > b.flop_utilization)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

#[test]
fn golden_v100_search_reproduces_table5_plan() {
    let accel = Accelerator::v100_like();
    let comm = CommConfig::default();
    let expected = plan(&case_study_request(7.5), &accel, &comm).expect("planner feasible");
    // The planner's golden shape (same assertions as its own suite).
    assert_eq!(expected.mp_ways, 4);
    assert!((512..=4096).contains(&expected.total_accelerators));

    let space = case_study_space(7.5, &[("v100", accel)]);
    let result = search(&space);
    let best = result.best.expect("search feasible");
    assert_eq!(best.accel_key, "v100");
    assert_eq!(
        best.parallelism,
        ModelParallelism::LayerPipeline { microbatches: 2 }
    );
    // Bit-identical: every integer and every f64 of the plan, via PartialEq.
    assert_eq!(best.plan, expected);
}

#[test]
fn pruned_search_is_bit_identical_to_naive_enumeration() {
    let registry: Vec<(&str, Accelerator)> = Accelerator::registry();
    for days in [0.5, 3.0, 7.5, 30.0, 365.0] {
        let mut space = case_study_space(days, &registry);
        let fast = search(&space);
        assert_eq!(fast.feasible, enumerate_naive(&space), "days={days}");

        // Again with an aggressive fleet cap so the cap prune fires.
        space.max_total_accelerators = 256;
        let capped = search(&space);
        assert_eq!(
            capped.feasible,
            enumerate_naive(&space),
            "capped days={days}"
        );
        assert!(capped
            .feasible
            .iter()
            .all(|p| p.plan.total_accelerators <= 256));
    }
}

#[test]
fn search_matches_triple_loop_over_planner() {
    // Triple loop: accelerator × microbatch option × (the planner's own
    // worker/ways scan). The pruned search over the joint space must land
    // on the identical argmin plan, f64-for-f64.
    let registry: Vec<(&str, Accelerator)> = Accelerator::registry();
    let micros = [1u64, 2, 4];
    for days in [2.0, 7.5, 45.0] {
        let mut space = case_study_space(days, &registry);
        space.microbatch_candidates = micros.to_vec();
        let result = search(&space);

        let comm_for = |a: &Accelerator| CommConfig {
            link_bw: a.interconnect_bw,
            hop_overhead: space.hop_overhead,
        };
        let oracle = fold_best(registry.iter().flat_map(|(_, accel)| {
            micros.map(|m| {
                let mut req = case_study_request(days);
                req.model_parallelism = ModelParallelism::LayerPipeline { microbatches: m };
                plan(&req, accel, &comm_for(accel))
            })
        }));
        assert_eq!(result.best.map(|p| p.plan), oracle, "days={days}");
    }
}

#[test]
fn infeasible_everywhere_is_none_for_both_paths() {
    let space = case_study_space(1e-4, &Accelerator::registry());
    let result = search(&space);
    assert!(result.feasible.is_empty());
    assert!(result.best.is_none());
    assert!(result.pareto.is_empty());
    assert!(enumerate_naive(&space).is_empty());
}

#[test]
fn pareto_and_best_are_consistent_with_the_feasible_set() {
    let mut space = case_study_space(7.5, &Accelerator::registry());
    space.microbatch_candidates = vec![1, 2, 4];
    let result = search(&space);
    assert!(!result.feasible.is_empty());
    let contains = |p: &SearchPoint| result.feasible.contains(p);
    assert!(result.pareto.iter().all(contains));
    assert!(contains(result.best.as_ref().expect("feasible")));
    // The argmin achieves the minimum fleet size over the feasible set.
    // (It need not sit on the 3-axis Pareto frontier: its utilization
    // tie-break can pick a point a same-size, faster-epoch point dominates.)
    let best = result.best.expect("feasible");
    let min_total = result
        .feasible
        .iter()
        .map(|p| p.plan.total_accelerators)
        .min()
        .expect("nonempty");
    assert_eq!(best.plan.total_accelerators, min_total);
    // Larger worker ladders only extend the feasible set.
    let mut wider = space.clone();
    wider.worker_candidates = pow2_candidates(1 << 16);
    let wide = search(&wider);
    assert!(result.feasible.iter().all(|p| wide.feasible.contains(p)));
}
