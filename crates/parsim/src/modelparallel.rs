//! Layer-wise model parallelism and embedding sharding (paper §6.2.2).

use serde::{Deserialize, Serialize};

/// One layer-parallel stage: a contiguous slice of the model placed on one
//  accelerator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Stage {
    /// Stage label ("embedding", "lstm0", …).
    pub name: String,
    /// Weight + weight-gradient bytes resident on the stage.
    pub weight_bytes: f64,
    /// Peak activation bytes while the stage runs.
    pub activation_bytes: f64,
}

impl Stage {
    /// Total per-accelerator footprint of the stage.
    pub fn footprint_bytes(&self) -> f64 {
        self.weight_bytes + self.activation_bytes
    }
}

/// Result of applying layer parallelism to one data-parallel worker.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerParallelPlan {
    /// Per-stage footprints in bytes, in stage order.
    pub stage_footprints: Vec<f64>,
    /// Wall-clock compute time of one training step, seconds.
    pub step_compute_seconds: f64,
    /// Accelerators per data-parallel worker.
    pub accels_per_worker: u64,
}

/// Pipeline a step of total compute time `compute_seconds` over `stages.len()`
/// stages with `microbatches` in flight (paper §6.2.2; GPipe-style schedule).
///
/// With `K` stages and `M` microbatches, a balanced pipeline runs in
/// `(M + K − 1)/M · C/K` — a speedup of `K·M/(M+K−1)` over sequential
/// execution. `microbatches = 1` degenerates to strictly sequential layer
/// execution (no speedup, memory relief only).
pub fn layer_parallel_plan(
    stages: &[Stage],
    compute_seconds: f64,
    microbatches: u64,
) -> LayerParallelPlan {
    assert!(!stages.is_empty() && microbatches >= 1);
    let k = stages.len() as f64;
    let m = microbatches as f64;
    let step_compute_seconds = compute_seconds / k * ((m + k - 1.0) / m);
    LayerParallelPlan {
        stage_footprints: stages.iter().map(Stage::footprint_bytes).collect(),
        step_compute_seconds,
        accels_per_worker: stages.len() as u64,
    }
}

/// Shard the single largest weight tensor (the embedding, in the paper's
/// case study) into `pieces` equal parts and greedily re-assign the parts to
/// the stages with the smallest current footprint. Returns the new per-stage
/// footprints.
///
/// Mirrors §6.2.2: "split the embedding layer into 3 pieces and locate two
/// smaller parts in the memories of accelerators that perform recurrent
/// layer computations", evening out per-accelerator footprints.
pub fn shard_largest_weight(stages: &[Stage], pieces: u64) -> Vec<f64> {
    assert!(pieces >= 1 && !stages.is_empty());
    let heaviest = stages
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.weight_bytes
                .partial_cmp(&b.1.weight_bytes)
                .expect("finite weights")
        })
        .map(|(i, _)| i)
        .expect("nonempty");
    let shard = stages[heaviest].weight_bytes / pieces as f64;
    let mut footprints: Vec<f64> = stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if i == heaviest {
                s.activation_bytes + shard // keeps one piece
            } else {
                s.footprint_bytes()
            }
        })
        .collect();
    for _ in 1..pieces {
        let lightest = footprints
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty");
        footprints[lightest] += shard;
    }
    footprints
}

/// Shard the single largest weight tensor across the stages by
/// *waterfilling*: unequal pieces sized to equalize per-stage footprints
/// (the optimal continuous split). Reproduces the paper's
/// `{60,17,17,32} → {32,31,31,32}` GB exactly: the level settles where the
/// freed weight just tops up the lighter stages.
pub fn waterfill_largest_weight(stages: &[Stage]) -> Vec<f64> {
    assert!(!stages.is_empty());
    let heaviest = stages
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.weight_bytes
                .partial_cmp(&b.1.weight_bytes)
                .expect("finite weights")
        })
        .map(|(i, _)| i)
        .expect("nonempty");
    let water = stages[heaviest].weight_bytes;
    // Base footprints with the heavy weight lifted out of its stage.
    let bases: Vec<f64> = stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if i == heaviest {
                s.activation_bytes
            } else {
                s.footprint_bytes()
            }
        })
        .collect();
    // Find the fill level L: sum over stages of max(0, L − base) = water.
    let mut order: Vec<usize> = (0..bases.len()).collect();
    order.sort_by(|&a, &b| bases[a].partial_cmp(&bases[b]).expect("finite"));
    let mut remaining = water;
    let mut level = bases[order[0]];
    for rank in 0..order.len() {
        let active = rank as f64 + 1.0;
        let next = order
            .get(rank + 1)
            .map(|&j| bases[j])
            .unwrap_or(f64::INFINITY);
        let capacity = (next - level) * active;
        if capacity >= remaining || next.is_infinite() {
            level += remaining / active;
            remaining = 0.0;
            break;
        }
        remaining -= capacity;
        level = next;
    }
    debug_assert!(remaining.abs() < 1e-6 * water.max(1.0) || remaining == 0.0);
    bases.iter().map(|&b| b.max(level)).collect()
}

/// Maximum per-accelerator footprint, bytes.
pub fn peak_footprint(footprints: &[f64]) -> f64 {
    footprints.iter().fold(0.0, |a, &b| a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> f64 {
        x * 1e9
    }

    /// The §6 case-study stages: embedding-heavy stage plus two recurrent
    /// stages and the projection/output stage ({60, 17, 17, 32} GB of
    /// Table 5 before sharding).
    fn case_study_stages() -> Vec<Stage> {
        vec![
            Stage {
                name: "embedding".into(),
                weight_bytes: gb(59.5),
                activation_bytes: gb(0.5),
            },
            Stage {
                name: "lstm0".into(),
                weight_bytes: gb(4.3),
                activation_bytes: gb(12.7),
            },
            Stage {
                name: "lstm1".into(),
                weight_bytes: gb(4.3),
                activation_bytes: gb(12.7),
            },
            Stage {
                name: "proj+out".into(),
                weight_bytes: gb(13.0),
                activation_bytes: gb(19.0),
            },
        ]
    }

    #[test]
    fn sequential_pipeline_gives_no_speedup() {
        let plan = layer_parallel_plan(&case_study_stages(), 17.07, 1);
        assert!((plan.step_compute_seconds - 17.07).abs() < 1e-9);
        assert_eq!(plan.accels_per_worker, 4);
    }

    #[test]
    fn infinite_microbatches_approach_k_times_speedup() {
        let plan = layer_parallel_plan(&case_study_stages(), 16.0, 10_000);
        assert!((plan.step_compute_seconds - 4.0).abs() < 0.01);
    }

    #[test]
    fn two_microbatches_match_case_study_speedup() {
        // K = 4, M = 2 → step compute = C·5/8 ≈ 1.6× speedup, the paper's
        // Table 5 regime (7.2 days from 11.1 days).
        let plan = layer_parallel_plan(&case_study_stages(), 17.07, 2);
        let speedup = 17.07 / plan.step_compute_seconds;
        assert!((speedup - 1.6).abs() < 0.01, "speedup {speedup}");
    }

    #[test]
    fn sharding_evens_footprints_like_table5() {
        // Table 5: {60, 17, 17, 32} GB → {32, 31, 31, 32} GB after splitting
        // the embedding into 3 pieces.
        let stages = case_study_stages();
        let before: Vec<f64> = stages.iter().map(Stage::footprint_bytes).collect();
        assert!((peak_footprint(&before) - gb(60.0)).abs() < gb(1.0));
        let after = shard_largest_weight(&stages, 3);
        let peak = peak_footprint(&after);
        assert!(
            peak < gb(37.0),
            "post-shard peak {} GB should be near-even",
            peak / 1e9
        );
        // Total memory is conserved.
        let sum_before: f64 = before.iter().sum();
        let sum_after: f64 = after.iter().sum();
        assert!((sum_before - sum_after).abs() < 1.0);
    }

    #[test]
    fn waterfill_reproduces_paper_footprints_exactly() {
        // {60, 17, 17, 32} GB → {32, 31.3, 31.3, 32} GB: the level sits at
        // (59.5 + 0.5 + 17 + 17)/3 — paper Table 5's final row, rounded.
        let after = waterfill_largest_weight(&case_study_stages());
        let expected_level = (59.5 + 0.5 + 17.0 + 17.0) / 3.0 * 1e9;
        assert!((after[0] - expected_level).abs() < 1e6, "emb {}", after[0]);
        assert!((after[1] - expected_level).abs() < 1e6);
        assert!((after[2] - expected_level).abs() < 1e6);
        assert!((after[3] - gb(32.0)).abs() < 1e6, "out {}", after[3]);
        // Peak is the untouched heaviest base: exactly the paper's 32 GB.
        assert!((peak_footprint(&after) - gb(32.0)).abs() < 1e6);
        // Mass conserved.
        let total_before: f64 = case_study_stages().iter().map(Stage::footprint_bytes).sum();
        let total_after: f64 = after.iter().sum();
        assert!((total_before - total_after).abs() < 1e3);
    }

    #[test]
    fn waterfill_beats_equal_pieces() {
        let stages = case_study_stages();
        let equal = peak_footprint(&shard_largest_weight(&stages, 3));
        let water = peak_footprint(&waterfill_largest_weight(&stages));
        assert!(water <= equal + 1.0);
    }

    #[test]
    fn waterfill_on_uniform_stages_levels_exactly() {
        let stages: Vec<Stage> = (0..4)
            .map(|i| Stage {
                name: format!("s{i}"),
                weight_bytes: if i == 0 { gb(40.0) } else { gb(10.0) },
                activation_bytes: gb(2.0),
            })
            .collect();
        let after = waterfill_largest_weight(&stages);
        // Total = 40 + 3·12 + 2 = 78 GB over 4 stages → 19.5 GB each.
        for f in &after {
            assert!((f - gb(19.5)).abs() < 1e3, "{f}");
        }
    }

    #[test]
    fn sharding_into_one_piece_is_identity() {
        let stages = case_study_stages();
        let after = shard_largest_weight(&stages, 1);
        let before: Vec<f64> = stages.iter().map(Stage::footprint_bytes).collect();
        for (a, b) in after.iter().zip(before.iter()) {
            assert!((a - b).abs() < 1.0);
        }
    }

    #[test]
    fn pipeline_speedup_bounded_by_stage_count() {
        for m in [1u64, 2, 4, 16, 256] {
            let plan = layer_parallel_plan(&case_study_stages(), 10.0, m);
            let speedup = 10.0 / plan.step_compute_seconds;
            assert!(speedup <= 4.0 + 1e-9);
            assert!(speedup >= 1.0 - 1e-9);
        }
    }
}
