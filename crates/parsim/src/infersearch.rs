//! SLO-driven serving plan search: rank accelerator × decode-batch ×
//! replica-count configurations under latency constraints.
//!
//! The training-side [`search`](crate::search::search) optimizes a fleet
//! against an **epoch deadline**; a serving fleet is sized against a
//! **service-level objective** instead: a p99 per-token latency (time per
//! output token under saturated batching), a time-to-first-token bound, and
//! an aggregate token-throughput demand. The lattice is
//!
//! ```text
//! accelerator profile × decode batch size × replica count
//! ```
//!
//! with one accelerator per replica — the decode working set (weights + KV
//! cache) either fits one part's usable HBM or the profile is infeasible.
//!
//! ## Deterministic latency semantics
//!
//! The roofline model is deterministic, so percentiles collapse to worst
//! cases: under saturated continuous batching a token waits at most one
//! decode step, hence `p99_token_seconds = decode_step_seconds`, and the
//! first token of a request costs the prompt pass plus the step that emits
//! it, hence `ttft_seconds = prefill_seconds + decode_step_seconds`.
//!
//! ## Exactness contract
//!
//! [`infer_search`] is **bit-identical** to [`enumerate_infer_naive`] — the
//! same feasible points, the same `f64`s — because every prune only skips
//! points the naive filters also reject:
//!
//! * **memory** (KV-inclusive) — `mem_bytes > usable` is replica-independent,
//!   so one comparison rejects the profile's whole replica ladder; it is the
//!   comparison the naive path applies per point, hoisted.
//! * **latency floor** (the serving analogue of the training search's
//!   allreduce floor) — `decode_step_seconds` and `ttft_seconds` are
//!   replica-independent: adding replicas buys throughput, never latency.
//!   A profile that misses either SLO misses it at every replica count.
//! * **cap** — replica candidates ascend strictly, so the first
//!   `replicas > max_total_accelerators` ends the ladder (exact integers).
//!
//! The throughput demand is **not** pruned: it is applied as the identical
//! post-evaluation filter on both paths (replicas enter the feasibility
//! comparison, so hoisting it would require a monotonicity argument the
//! bit-identity contract doesn't need).
//!
//! Point evaluation ([`infer_plan_point`]) is one shared code path, and the
//! Pareto frontier reuses the training search's sorted-sweep construction
//! against an all-pairs reference oracle.

use roofline::Accelerator;
use serde::{Deserialize, Serialize};

/// One serving candidate: an accelerator running one model replica at one
/// decode batch size, characterized and roofline-priced upstream (see
/// `analysis::infer_search_space`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferProfile {
    /// Registry key of the accelerator (see [`Accelerator::by_key`]).
    pub accel_key: String,
    /// The accelerator configuration.
    pub accel: Accelerator,
    /// Decode batch size (concurrent sequences per replica).
    pub batch: u64,
    /// Prompt (prefill) pass seconds for one batch at this batch size.
    pub prefill_seconds: f64,
    /// One decode step, seconds (each sequence emits one token).
    pub decode_step_seconds: f64,
    /// Resident bytes per replica: weights plus the batch's KV cache.
    pub mem_bytes: f64,
}

/// The serving SLO a plan must meet.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloTarget {
    /// p99 per-token latency bound, seconds (time per output token).
    pub p99_token_seconds: f64,
    /// Time-to-first-token bound, seconds.
    pub ttft_seconds: f64,
}

/// The joint serving search space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferSearchSpace {
    /// Accelerator × batch candidates.
    pub profiles: Vec<InferProfile>,
    /// Candidate replica counts, strictly ascending.
    pub replica_candidates: Vec<u64>,
    /// Hard cap on total accelerators (= replicas).
    pub max_total_accelerators: u64,
    /// Usable fraction of accelerator memory (swap threshold).
    pub usable_mem_fraction: f64,
    /// The latency SLO.
    pub slo: SloTarget,
    /// Aggregate fleet throughput demand, tokens/s.
    pub target_tokens_per_s: f64,
}

/// One evaluated serving configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferPlanPoint {
    /// Accelerator registry key.
    pub accel_key: String,
    /// Decode batch size per replica.
    pub batch: u64,
    /// Model replicas (one accelerator each).
    pub replicas: u64,
    /// Total accelerators (= replicas).
    pub total_accelerators: u64,
    /// Aggregate throughput, tokens/s.
    pub tokens_per_s: f64,
    /// p99 per-token latency, seconds (one decode step — see module docs).
    pub p99_token_seconds: f64,
    /// Time to first token, seconds (prefill + one decode step).
    pub ttft_seconds: f64,
    /// Resident memory per accelerator, GB.
    pub mem_per_accel_gb: f64,
}

/// Enumeration/pruning counters (informational; not part of the exactness
/// contract).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferSearchStats {
    /// Lattice points in the space (profiles × replica counts).
    pub considered: u64,
    /// Points fully priced through [`infer_plan_point`].
    pub evaluated: u64,
    /// Points skipped because weights + KV overflow usable memory.
    pub pruned_memory: u64,
    /// Points skipped by the replica-independent latency floor.
    pub pruned_latency: u64,
    /// Points skipped because `replicas` exceeds the fleet cap.
    pub pruned_over_cap: u64,
}

/// Everything the serving search returns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferSearchResult {
    /// Every feasible point, in canonical enumeration order (profile →
    /// ascending replicas).
    pub feasible: Vec<InferPlanPoint>,
    /// Non-dominated subset of `feasible` under minimizing
    /// `(total_accelerators, p99_token_seconds, mem_per_accel_gb)`, in
    /// canonical order.
    pub pareto: Vec<InferPlanPoint>,
    /// Argmin: fewest total accelerators, ties broken by higher aggregate
    /// throughput, then canonical order.
    pub best: Option<InferPlanPoint>,
    /// Enumeration counters.
    pub stats: InferSearchStats,
}

/// Price one lattice point: `replicas` copies of `profile`. The single
/// point-evaluation code path — [`infer_search`] and
/// [`enumerate_infer_naive`] both route through it.
pub fn infer_plan_point(profile: &InferProfile, replicas: u64) -> InferPlanPoint {
    let tokens_per_s = replicas as f64 * profile.batch as f64 / profile.decode_step_seconds;
    InferPlanPoint {
        accel_key: profile.accel_key.clone(),
        batch: profile.batch,
        replicas,
        total_accelerators: replicas,
        tokens_per_s,
        p99_token_seconds: profile.decode_step_seconds,
        ttft_seconds: profile.prefill_seconds + profile.decode_step_seconds,
        mem_per_accel_gb: profile.mem_bytes / 1e9,
    }
}

fn meets_slo(profile: &InferProfile, slo: &SloTarget) -> bool {
    profile.decode_step_seconds <= slo.p99_token_seconds
        && profile.prefill_seconds + profile.decode_step_seconds <= slo.ttft_seconds
}

/// Brute-force oracle: price **every** in-cap lattice point, then filter on
/// memory, the SLO, and the throughput demand. The differential suite and
/// the `inferbench` gate compare [`infer_search`] against this bit-for-bit.
pub fn enumerate_infer_naive(space: &InferSearchSpace) -> Vec<InferPlanPoint> {
    let mut out = Vec::new();
    for profile in &space.profiles {
        let usable = profile.accel.mem_capacity * space.usable_mem_fraction;
        for &replicas in &space.replica_candidates {
            if replicas > space.max_total_accelerators {
                continue;
            }
            let point = infer_plan_point(profile, replicas);
            if profile.mem_bytes > usable
                || !meets_slo(profile, &space.slo)
                || point.tokens_per_s < space.target_tokens_per_s
            {
                continue;
            }
            out.push(point);
        }
    }
    out
}

/// Does `p` dominate `q` under minimizing
/// `(total_accelerators, p99_token_seconds, mem_per_accel_gb)`?
fn dominates(p: &InferPlanPoint, q: &InferPlanPoint) -> bool {
    p.total_accelerators <= q.total_accelerators
        && p.p99_token_seconds <= q.p99_token_seconds
        && p.mem_per_accel_gb <= q.mem_per_accel_gb
        && (p.total_accelerators < q.total_accelerators
            || p.p99_token_seconds < q.p99_token_seconds
            || p.mem_per_accel_gb < q.mem_per_accel_gb)
}

/// The non-dominated subset by definition: compare every pair. Quadratic;
/// kept as the oracle for [`infer_pareto_frontier`].
pub fn infer_pareto_frontier_reference(points: &[InferPlanPoint]) -> Vec<InferPlanPoint> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect()
}

/// The non-dominated subset, preserving order — the training search's
/// sorted-sweep construction (lexicographic order on the objective triple
/// puts every dominator before anything it dominates; domination is
/// transitive). Output identical to the all-pairs reference.
pub fn infer_pareto_frontier(points: &[InferPlanPoint]) -> Vec<InferPlanPoint> {
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    order.sort_by(|&i, &j| {
        let (a, b) = (&points[i as usize], &points[j as usize]);
        a.total_accelerators
            .cmp(&b.total_accelerators)
            .then(a.p99_token_seconds.total_cmp(&b.p99_token_seconds))
            .then(a.mem_per_accel_gb.total_cmp(&b.mem_per_accel_gb))
    });
    let mut frontier: Vec<u32> = Vec::new();
    let mut on_frontier = vec![false; points.len()];
    for &i in &order {
        let p = &points[i as usize];
        if !frontier.iter().any(|&f| dominates(&points[f as usize], p)) {
            frontier.push(i);
            on_frontier[i as usize] = true;
        }
    }
    points
        .iter()
        .zip(&on_frontier)
        .filter(|(_, &keep)| keep)
        .map(|(p, _)| p.clone())
        .collect()
}

/// Selection criterion over an arbitrary point set: fewest total
/// accelerators, ties broken by higher aggregate throughput, remaining ties
/// by enumeration order.
pub fn infer_argmin_point(points: &[InferPlanPoint]) -> Option<InferPlanPoint> {
    let mut best: Option<&InferPlanPoint> = None;
    for p in points {
        let better = match best {
            None => true,
            Some(b) => {
                p.total_accelerators < b.total_accelerators
                    || (p.total_accelerators == b.total_accelerators
                        && p.tokens_per_s > b.tokens_per_s)
            }
        };
        if better {
            best = Some(p);
        }
    }
    best.cloned()
}

/// Search the serving space with pruning. Bit-identical to
/// [`enumerate_infer_naive`] (see the module docs for why each prune is
/// exact). Serving lattices are small (registry × batch ladder × replica
/// ladder), so profiles are walked sequentially — determinism for free.
pub fn infer_search(space: &InferSearchSpace) -> InferSearchResult {
    let mut span = obs::span("parsim.infer_search")
        .with_arg("profiles", space.profiles.len() as u64)
        .with_arg("replicas", space.replica_candidates.len() as u64);
    assert!(
        space.replica_candidates.windows(2).all(|w| w[0] < w[1]),
        "replica candidates must ascend strictly"
    );
    let mut stats = InferSearchStats::default();
    let mut feasible = Vec::new();
    for profile in &space.profiles {
        let usable = profile.accel.mem_capacity * space.usable_mem_fraction;
        let candidates = space.replica_candidates.len() as u64;
        stats.considered += candidates;
        // Memory prune (KV-inclusive): replica-independent, so one
        // comparison rejects the whole replica ladder.
        if profile.mem_bytes > usable {
            stats.pruned_memory += candidates;
            continue;
        }
        // Latency floor: step and TTFT don't improve with replicas; a
        // profile missing the SLO misses it everywhere on the ladder.
        if !meets_slo(profile, &space.slo) {
            stats.pruned_latency += candidates;
            continue;
        }
        for (i, &replicas) in space.replica_candidates.iter().enumerate() {
            // Cap prune: candidates ascend, so the first overflow ends the
            // ladder.
            if replicas > space.max_total_accelerators {
                stats.pruned_over_cap += candidates - i as u64;
                break;
            }
            stats.evaluated += 1;
            let point = infer_plan_point(profile, replicas);
            // Throughput demand: identical filter to the naive path.
            if point.tokens_per_s < space.target_tokens_per_s {
                continue;
            }
            feasible.push(point);
        }
    }
    span.arg("considered", stats.considered);
    span.arg("evaluated", stats.evaluated);
    span.arg("pruned_memory", stats.pruned_memory);
    span.arg("pruned_latency", stats.pruned_latency);
    span.arg("pruned_over_cap", stats.pruned_over_cap);
    let pareto = infer_pareto_frontier(&feasible);
    let best = infer_argmin_point(&feasible);
    InferSearchResult {
        feasible,
        pareto,
        best,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> f64 {
        x * 1e9
    }

    fn toy_profile(key: &str, accel: Accelerator, batch: u64, step_ms: f64) -> InferProfile {
        InferProfile {
            accel_key: key.into(),
            accel,
            batch,
            prefill_seconds: 0.08,
            decode_step_seconds: step_ms / 1e3,
            mem_bytes: gb(4.0) + batch as f64 * gb(0.05),
        }
    }

    fn toy_space() -> InferSearchSpace {
        InferSearchSpace {
            profiles: vec![
                toy_profile("v100", Accelerator::v100_like(), 8, 12.0),
                toy_profile("v100", Accelerator::v100_like(), 64, 30.0),
                toy_profile("a100", Accelerator::a100_like(), 64, 14.0),
                // Oversized batch: KV cache alone overflows 32 GiB usable.
                toy_profile("v100", Accelerator::v100_like(), 1024, 200.0),
            ],
            replica_candidates: vec![1, 2, 4, 8, 16, 32],
            max_total_accelerators: 32,
            usable_mem_fraction: 0.8,
            slo: SloTarget {
                p99_token_seconds: 0.050,
                ttft_seconds: 0.250,
            },
            target_tokens_per_s: 2_000.0,
        }
    }

    #[test]
    fn search_matches_naive_bitwise() {
        let space = toy_space();
        let result = infer_search(&space);
        let naive = enumerate_infer_naive(&space);
        assert_eq!(result.feasible, naive);
        assert!(!result.feasible.is_empty(), "toy space must be feasible");
    }

    #[test]
    fn memory_prune_is_kv_inclusive() {
        let result = infer_search(&toy_space());
        // The batch-1024 profile dies on memory before any replica pricing.
        assert!(result.stats.pruned_memory >= 6);
        assert!(result.feasible.iter().all(|p| p.batch <= 64));
    }

    #[test]
    fn latency_floor_prunes_whole_ladders() {
        let mut space = toy_space();
        space.slo.p99_token_seconds = 0.013; // only the 12 ms & a100 steps fit
        let result = infer_search(&space);
        assert!(result.stats.pruned_latency > 0);
        assert_eq!(result.feasible, enumerate_infer_naive(&space));
        assert!(result.feasible.iter().all(|p| p.p99_token_seconds <= 0.013));
    }

    #[test]
    fn throughput_demand_filters_but_never_prunes() {
        let mut space = toy_space();
        space.target_tokens_per_s = 1e9; // unreachable
        let result = infer_search(&space);
        assert!(result.feasible.is_empty());
        // Every in-cap point of surviving ladders was still priced.
        assert!(result.stats.evaluated > 0);
        assert_eq!(result.feasible, enumerate_infer_naive(&space));
    }

    #[test]
    fn pareto_and_argmin_are_consistent() {
        let result = infer_search(&toy_space());
        assert_eq!(
            result.pareto,
            infer_pareto_frontier_reference(&result.feasible)
        );
        for p in &result.pareto {
            assert!(!result.pareto.iter().any(|q| dominates(q, p)));
        }
        let best = result.best.expect("feasible space has an argmin");
        assert!(result.feasible.contains(&best));
        let min_total = result
            .feasible
            .iter()
            .map(|p| p.total_accelerators)
            .min()
            .unwrap();
        assert_eq!(best.total_accelerators, min_total);
    }

    #[test]
    fn cap_prune_is_exact() {
        let mut space = toy_space();
        space.max_total_accelerators = 4;
        space.target_tokens_per_s = 0.0;
        let result = infer_search(&space);
        assert!(result.stats.pruned_over_cap > 0);
        assert!(result.feasible.iter().all(|p| p.total_accelerators <= 4));
        assert_eq!(result.feasible, enumerate_infer_naive(&space));
    }

    #[test]
    fn repeated_searches_are_deterministic() {
        let space = toy_space();
        assert_eq!(infer_search(&space), infer_search(&space));
    }
}
