//! Discrete-event simulation of the layer-parallel pipeline schedule —
//! cross-checks the closed form `(M + K − 1)/M · C/K` used by
//! [`crate::layer_parallel_plan`], and prices *imbalanced* stages, which
//! the closed form cannot.
//!
//! The schedule is GPipe-style: microbatch `m` may start on stage `k` once
//! (a) stage `k` finished microbatch `m − 1` and (b) stage `k − 1` finished
//! microbatch `m`.

use serde::{Deserialize, Serialize};

/// Result of simulating one training step through the pipeline.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PipelineSim {
    /// Wall-clock time for all microbatches to drain, seconds.
    pub makespan_seconds: f64,
    /// Mean fraction of time a stage spent busy.
    pub stage_utilization: f64,
}

/// One stage × microbatch occupancy interval from a traced simulation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PipelineEvent {
    /// Pipeline stage index.
    pub stage: usize,
    /// Microbatch index.
    pub microbatch: u64,
    /// Simulated start time, seconds.
    pub start_seconds: f64,
    /// Simulated end time, seconds.
    pub end_seconds: f64,
}

fn simulate(
    stage_seconds: &[f64],
    microbatches: u64,
    mut events: Option<&mut Vec<PipelineEvent>>,
) -> PipelineSim {
    assert!(!stage_seconds.is_empty() && microbatches >= 1);
    let k = stage_seconds.len();
    let m = microbatches as usize;
    // finish[k] = when stage k finished the previous microbatch.
    let mut stage_free = vec![0.0f64; k];
    let mut busy = vec![0.0f64; k];
    for mb in 0..m {
        let mut ready = 0.0f64; // when this microbatch leaves the previous stage
        for (s, &dur) in stage_seconds.iter().enumerate() {
            let start = ready.max(stage_free[s]);
            let end = start + dur;
            busy[s] += dur;
            stage_free[s] = end;
            ready = end;
            if let Some(events) = events.as_deref_mut() {
                events.push(PipelineEvent {
                    stage: s,
                    microbatch: mb as u64,
                    start_seconds: start,
                    end_seconds: end,
                });
            }
        }
    }
    let makespan = stage_free.iter().fold(0.0f64, |a, &b| a.max(b));
    let utilization = busy.iter().sum::<f64>() / (k as f64 * makespan.max(f64::MIN_POSITIVE));
    PipelineSim {
        makespan_seconds: makespan,
        stage_utilization: utilization,
    }
}

/// Simulate `microbatches` microbatches flowing through stages whose
/// per-microbatch compute times are `stage_seconds` (already divided by the
/// microbatch count).
pub fn simulate_pipeline(stage_seconds: &[f64], microbatches: u64) -> PipelineSim {
    simulate(stage_seconds, microbatches, None)
}

/// [`simulate_pipeline`], also returning every stage × microbatch occupancy
/// interval for timeline export (see [`crate::pipeline_trace_events`]).
pub fn simulate_pipeline_traced(
    stage_seconds: &[f64],
    microbatches: u64,
) -> (PipelineSim, Vec<PipelineEvent>) {
    let mut events = Vec::with_capacity(stage_seconds.len() * microbatches as usize);
    let sim = simulate(stage_seconds, microbatches, Some(&mut events));
    (sim, events)
}

/// Convenience: simulate a *balanced* split of total step compute `c` over
/// `stages` stages and `microbatches` microbatches (the closed form's
/// setting).
pub fn simulate_balanced_pipeline(c: f64, stages: usize, microbatches: u64) -> PipelineSim {
    let per = c / stages as f64 / microbatches as f64;
    simulate_pipeline(&vec![per; stages], microbatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelparallel::{layer_parallel_plan, Stage};

    #[test]
    fn balanced_pipeline_matches_closed_form() {
        for (k, m) in [(4usize, 2u64), (4, 4), (2, 8), (8, 1), (3, 7)] {
            let c = 17.07;
            let sim = simulate_balanced_pipeline(c, k, m);
            let closed = c / k as f64 * ((m as f64 + k as f64 - 1.0) / m as f64);
            assert!(
                (sim.makespan_seconds - closed).abs() < 1e-9 * closed,
                "K={k} M={m}: sim {} vs closed {closed}",
                sim.makespan_seconds
            );
        }
    }

    #[test]
    fn closed_form_and_des_agree_with_layer_parallel_plan() {
        let stages: Vec<Stage> = (0..4)
            .map(|i| Stage {
                name: format!("s{i}"),
                weight_bytes: 1e9,
                activation_bytes: 1e9,
            })
            .collect();
        let plan = layer_parallel_plan(&stages, 16.0, 2);
        let sim = simulate_balanced_pipeline(16.0, 4, 2);
        assert!((plan.step_compute_seconds - sim.makespan_seconds).abs() < 1e-9);
    }

    #[test]
    fn imbalanced_stages_bound_by_slowest() {
        // One stage 4× slower: throughput is set by it, so many microbatches
        // approach makespan ≈ M · slowest.
        let stages = [1.0, 4.0, 1.0, 1.0];
        let m = 64;
        let sim = simulate_pipeline(&stages, m);
        let lower = m as f64 * 4.0;
        assert!(sim.makespan_seconds >= lower);
        assert!(sim.makespan_seconds < lower + 10.0);
        // Utilization suffers: the fast stages idle.
        assert!(sim.stage_utilization < 0.5);
    }

    #[test]
    fn traced_simulation_matches_untraced() {
        let stages = [1.0, 4.0, 1.0, 1.0];
        let (sim, events) = simulate_pipeline_traced(&stages, 8);
        let plain = simulate_pipeline(&stages, 8);
        assert_eq!(sim.makespan_seconds, plain.makespan_seconds);
        assert_eq!(events.len(), stages.len() * 8);
        // Events respect both pipeline dependencies.
        for e in &events {
            assert!(e.end_seconds > e.start_seconds);
            if e.stage > 0 {
                let upstream = events
                    .iter()
                    .find(|u| u.stage == e.stage - 1 && u.microbatch == e.microbatch)
                    .unwrap();
                assert!(e.start_seconds >= upstream.end_seconds);
            }
            if e.microbatch > 0 {
                let prev = events
                    .iter()
                    .find(|u| u.stage == e.stage && u.microbatch == e.microbatch - 1)
                    .unwrap();
                assert!(e.start_seconds >= prev.end_seconds);
            }
        }
        let last_end = events.iter().fold(0.0f64, |a, e| a.max(e.end_seconds));
        assert_eq!(last_end, sim.makespan_seconds);
    }

    #[test]
    fn single_stage_is_sequential() {
        let sim = simulate_pipeline(&[2.5], 10);
        assert!((sim.makespan_seconds - 25.0).abs() < 1e-12);
        assert!((sim.stage_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_improves_with_microbatches() {
        let per = |m: u64| simulate_balanced_pipeline(16.0, 4, m).stage_utilization;
        assert!(per(1) < per(2));
        assert!(per(2) < per(8));
        assert!(per(64) > 0.9);
    }
}
