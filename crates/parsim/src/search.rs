//! Cluster plan search: rank accelerator × parallelism configurations.
//!
//! The paper's §6 case study hand-derives *one* parallelization of *one*
//! model on *one* V100-class part. [`plan`](crate::planner::plan) automates
//! that single point; this module turns it into a search engine over the
//! joint space
//!
//! ```text
//! accelerator profile × model-parallel variant (none | pipeline × microbatch)
//!                     × data-parallel worker count
//! ```
//!
//! pruning infeasible regions early and returning every feasible plan, the
//! Pareto frontier over `(epoch days, total accelerators, per-accelerator
//! footprint)`, and the planner-compatible argmin.
//!
//! ## Exactness contract
//!
//! [`search`] is **bit-identical** to [`enumerate_naive`] — same feasible
//! points, same `f64`s — because every prune only skips points that the
//! naive filters would also reject:
//!
//! * **memory** — `mem_per_accel > usable` is the same comparison the naive
//!   path applies per point; it is hoisted out of the worker loop.
//! * **cap** — worker candidates ascend, so once
//!   `workers · ways > max_total_accelerators` every later candidate of the
//!   variant is over the cap too (exact integer arithmetic).
//! * **allreduce-dominated** — the epoch time is computed as
//!   `D / (w·sps) · step_seconds / 86400` with `step_seconds =
//!   compute + comm ≥ comm`. f64 rounding is monotone, so replaying the
//!   identical expression with `comm` in place of `step_seconds` is a lower
//!   bound *in f64 arithmetic*, not just in exact math. When that floor
//!   already misses the deadline, the point is infeasible without pricing
//!   its compute at all.
//!
//! Point evaluation itself ([`plan_point`], [`split_variants`]) is shared
//! with [`plan`](crate::planner::plan), so there is exactly one enumeration
//! code path in the workspace; the differential suite
//! (`tests/search_equiv.rs`) pins search ≡ naive ≡ triple-looped planner.
//!
//! Profiles are searched on the rayon pool with an order-preserving collect
//! and merged sequentially, so results are deterministic regardless of
//! thread count (and equal to the sequential oracle — the property suite
//! asserts exactly that).

use rayon::prelude::*;
use roofline::Accelerator;
use serde::{Deserialize, Serialize};

use crate::allreduce::{ring_allreduce_seconds, CommConfig};
use crate::dataparallel::WorkerStep;
use crate::modelparallel::{layer_parallel_plan, peak_footprint, waterfill_largest_weight, Stage};
use crate::planner::{ModelParallelism, Plan};

/// One accelerator-specific workload profile: how one worker's training step
/// behaves on this part (the per-accelerator inputs the §6 case study
/// derives by hand).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CandidateProfile {
    /// Registry key of the accelerator (see [`Accelerator::by_key`]).
    pub accel_key: String,
    /// The accelerator configuration.
    pub accel: Accelerator,
    /// Per-worker subbatch this profile was characterized at.
    pub subbatch: u64,
    /// One worker's step profile on this accelerator at this subbatch.
    pub step: WorkerStep,
    /// Unsplit per-worker training-step footprint, bytes.
    pub footprint_bytes: f64,
    /// Layer-parallel stages for footprint splitting; must be non-empty.
    pub stages: Vec<Stage>,
}

/// The joint search space.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Accelerator × subbatch candidates.
    pub profiles: Vec<CandidateProfile>,
    /// Dataset size, samples.
    pub dataset_samples: f64,
    /// Epoch deadline, days.
    pub target_epoch_days: f64,
    /// Usable fraction of accelerator memory (swap threshold).
    pub usable_mem_fraction: f64,
    /// Candidate data-parallel worker counts, strictly ascending.
    pub worker_candidates: Vec<u64>,
    /// In-flight microbatch counts for the layer-pipeline variants.
    pub microbatch_candidates: Vec<u64>,
    /// Hard cap on `workers · ways`.
    pub max_total_accelerators: u64,
    /// Per-hop allreduce overhead, seconds; link bandwidth comes from each
    /// profile's accelerator.
    pub hop_overhead: f64,
}

impl SearchSpace {
    /// The communication model a profile's fleet runs over: the profile
    /// accelerator's interconnect at the space's hop overhead.
    pub fn comm_for(&self, accel: &Accelerator) -> CommConfig {
        CommConfig {
            link_bw: accel.interconnect_bw,
            hop_overhead: self.hop_overhead,
        }
    }
}

/// One evaluated configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchPoint {
    /// Accelerator registry key.
    pub accel_key: String,
    /// Per-worker subbatch.
    pub subbatch: u64,
    /// Model-parallel strategy of the point.
    pub parallelism: ModelParallelism,
    /// The evaluated plan.
    pub plan: Plan,
}

/// Enumeration/pruning counters (informational; not part of the exactness
/// contract).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Lattice points in the space (profiles × variants × worker counts).
    pub considered: u64,
    /// Points fully priced through [`plan_point`].
    pub evaluated: u64,
    /// Points skipped because the variant overflows per-accelerator memory.
    pub pruned_memory: u64,
    /// Points skipped because `workers · ways` exceeds the cap.
    pub pruned_over_cap: u64,
    /// Points skipped by the allreduce-dominated epoch floor.
    pub pruned_comm_bound: u64,
}

impl SearchStats {
    fn absorb(&mut self, other: SearchStats) {
        self.considered += other.considered;
        self.evaluated += other.evaluated;
        self.pruned_memory += other.pruned_memory;
        self.pruned_over_cap += other.pruned_over_cap;
        self.pruned_comm_bound += other.pruned_comm_bound;
    }
}

/// Everything the search returns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Every feasible point, in canonical enumeration order (profile →
    /// variant → ascending workers).
    pub feasible: Vec<SearchPoint>,
    /// Non-dominated subset of `feasible` under minimizing
    /// `(epoch_days, total_accelerators, mem_per_accel_gb)`, in canonical
    /// order.
    pub pareto: Vec<SearchPoint>,
    /// Planner-compatible argmin: fewest total accelerators, ties broken by
    /// higher FLOP utilization, then canonical order.
    pub best: Option<SearchPoint>,
    /// Enumeration counters.
    pub stats: SearchStats,
}

/// Per-accelerator memory and compute cost of one model-parallel variant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VariantCost {
    /// The strategy this variant prices.
    pub parallelism: ModelParallelism,
    /// Accelerators per data-parallel worker.
    pub ways: u64,
    /// Peak per-accelerator footprint under the split, bytes.
    pub mem_per_accel: f64,
    /// Wall-clock compute seconds of one step under the split.
    pub compute_seconds: f64,
}

/// The model-parallel variants of one profile, in canonical order: the
/// unsplit model first, then one layer-pipeline variant per microbatch
/// count (only when there is more than one stage to split over). The
/// pipeline variants waterfill the heaviest weight across stages — the
/// paper's embedding-sharding move, applied automatically.
pub fn split_variants(
    stages: &[Stage],
    footprint_bytes: f64,
    compute_seconds: f64,
    microbatches: &[u64],
) -> Vec<VariantCost> {
    assert!(!stages.is_empty(), "search needs at least one stage");
    let mut variants = vec![VariantCost {
        parallelism: ModelParallelism::None,
        ways: 1,
        mem_per_accel: footprint_bytes,
        compute_seconds,
    }];
    if stages.len() > 1 {
        let peak = peak_footprint(&waterfill_largest_weight(stages));
        for &micro in microbatches {
            let lp = layer_parallel_plan(stages, compute_seconds, micro);
            variants.push(VariantCost {
                parallelism: ModelParallelism::LayerPipeline {
                    microbatches: micro,
                },
                ways: stages.len() as u64,
                mem_per_accel: peak,
                compute_seconds: lp.step_compute_seconds,
            });
        }
    }
    variants
}

fn plan_point_with_comm(
    step: &WorkerStep,
    variant: &VariantCost,
    workers: u64,
    dataset_samples: f64,
    peak_flops: f64,
    comm_seconds: f64,
) -> Plan {
    let step_seconds = variant.compute_seconds + comm_seconds;
    let epoch_days =
        dataset_samples / (workers as f64 * step.samples_per_step) * step_seconds / 86_400.0;
    let utilization = step.alg_flops / (step_seconds * peak_flops) / variant.ways as f64;
    Plan {
        dp_workers: workers,
        mp_ways: variant.ways,
        total_accelerators: workers * variant.ways,
        step_seconds,
        epoch_days,
        flop_utilization: utilization,
        mem_per_accel_gb: variant.mem_per_accel / 1e9,
    }
}

/// Price one lattice point: `workers` data-parallel replicas of `variant`,
/// each stage allreducing its gradient shard over the ring. This is the
/// single point-evaluation code path — [`plan`](crate::planner::plan),
/// [`search`], and [`enumerate_naive`] all route through it.
pub fn plan_point(
    step: &WorkerStep,
    variant: &VariantCost,
    workers: u64,
    dataset_samples: f64,
    peak_flops: f64,
    comm: &CommConfig,
) -> Plan {
    let comm_seconds =
        ring_allreduce_seconds(step.gradient_bytes / variant.ways as f64, workers, comm);
    plan_point_with_comm(
        step,
        variant,
        workers,
        dataset_samples,
        peak_flops,
        comm_seconds,
    )
}

/// Powers of two `1, 2, 4, … ≤ limit` — the canonical data-parallel worker
/// ladder (always contains at least `1`).
pub fn pow2_candidates(limit: u64) -> Vec<u64> {
    let mut out = vec![1u64];
    while let Some(&last) = out.last() {
        match last.checked_mul(2) {
            Some(next) if next <= limit => out.push(next),
            _ => break,
        }
    }
    out
}

fn profile_variants(space: &SearchSpace, profile: &CandidateProfile) -> Vec<VariantCost> {
    split_variants(
        &profile.stages,
        profile.footprint_bytes,
        profile.step.compute_seconds,
        &space.microbatch_candidates,
    )
}

/// Brute-force oracle: price **every** in-cap lattice point, then filter on
/// memory and the deadline. Quadratic amounts of wasted work by design —
/// the differential suite and the `plansearch` bench compare [`search`]
/// against this bit-for-bit.
pub fn enumerate_naive(space: &SearchSpace) -> Vec<SearchPoint> {
    let mut out = Vec::new();
    for profile in &space.profiles {
        let usable = profile.accel.mem_capacity * space.usable_mem_fraction;
        let comm = space.comm_for(&profile.accel);
        for variant in profile_variants(space, profile) {
            for &workers in &space.worker_candidates {
                if workers.saturating_mul(variant.ways) > space.max_total_accelerators {
                    continue;
                }
                let plan = plan_point(
                    &profile.step,
                    &variant,
                    workers,
                    space.dataset_samples,
                    profile.accel.peak_flops,
                    &comm,
                );
                if variant.mem_per_accel > usable || plan.epoch_days > space.target_epoch_days {
                    continue;
                }
                out.push(SearchPoint {
                    accel_key: profile.accel_key.clone(),
                    subbatch: profile.subbatch,
                    parallelism: variant.parallelism,
                    plan,
                });
            }
        }
    }
    out
}

fn search_profile(
    space: &SearchSpace,
    profile: &CandidateProfile,
) -> (Vec<SearchPoint>, SearchStats) {
    let _span = obs::span("parsim.search_profile")
        .with_arg("accel", profile.accel_key.as_str())
        .with_arg("subbatch", profile.subbatch);
    let usable = profile.accel.mem_capacity * space.usable_mem_fraction;
    let comm = space.comm_for(&profile.accel);
    let mut stats = SearchStats::default();
    let mut out = Vec::new();
    for variant in profile_variants(space, profile) {
        let candidates = space.worker_candidates.len() as u64;
        stats.considered += candidates;
        // Memory prune: the footprint is worker-count independent, so one
        // comparison rejects the variant's whole worker ladder.
        if variant.mem_per_accel > usable {
            stats.pruned_memory += candidates;
            continue;
        }
        for (i, &workers) in space.worker_candidates.iter().enumerate() {
            // Cap prune: candidates ascend, so the first overflow ends the
            // ladder.
            if workers.saturating_mul(variant.ways) > space.max_total_accelerators {
                stats.pruned_over_cap += candidates - i as u64;
                break;
            }
            // Allreduce-dominated prune: replay the epoch expression with
            // the comm term alone — a lower bound in f64 (see module docs).
            let comm_seconds = ring_allreduce_seconds(
                profile.step.gradient_bytes / variant.ways as f64,
                workers,
                &comm,
            );
            let comm_epoch_floor = space.dataset_samples
                / (workers as f64 * profile.step.samples_per_step)
                * comm_seconds
                / 86_400.0;
            if comm_epoch_floor > space.target_epoch_days {
                stats.pruned_comm_bound += 1;
                continue;
            }
            stats.evaluated += 1;
            let plan = plan_point_with_comm(
                &profile.step,
                &variant,
                workers,
                space.dataset_samples,
                profile.accel.peak_flops,
                comm_seconds,
            );
            if plan.epoch_days > space.target_epoch_days {
                continue;
            }
            out.push(SearchPoint {
                accel_key: profile.accel_key.clone(),
                subbatch: profile.subbatch,
                parallelism: variant.parallelism,
                plan,
            });
        }
    }
    (out, stats)
}

/// Does `p` dominate `q` under minimizing
/// `(epoch_days, total_accelerators, mem_per_accel_gb)`?
fn dominates(p: &Plan, q: &Plan) -> bool {
    p.epoch_days <= q.epoch_days
        && p.total_accelerators <= q.total_accelerators
        && p.mem_per_accel_gb <= q.mem_per_accel_gb
        && (p.epoch_days < q.epoch_days
            || p.total_accelerators < q.total_accelerators
            || p.mem_per_accel_gb < q.mem_per_accel_gb)
}

/// The non-dominated subset of `points` by definition: compare every pair.
/// Quadratic; kept as the oracle for [`pareto_frontier`] (the differential
/// suite and the `plansearch` bench compare the two bit-for-bit).
pub fn pareto_frontier_reference(points: &[SearchPoint]) -> Vec<SearchPoint> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(&q.plan, &p.plan)))
        .cloned()
        .collect()
}

/// The non-dominated subset of `points`, preserving order. Exact ties
/// survive (neither point dominates the other).
///
/// Single sorted sweep instead of the all-pairs scan: lexicographic order
/// on the objective triple puts every dominator strictly before anything
/// it dominates (domination is `<=` on all three axes and `<` on one), and
/// domination is transitive, so a point is dominated iff some member of
/// the growing frontier dominates it. `O(n log n + n·h)` for a frontier of
/// size `h`, against the reference's `O(n²)`; output identical.
pub fn pareto_frontier(points: &[SearchPoint]) -> Vec<SearchPoint> {
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    order.sort_by(|&i, &j| {
        let (a, b) = (&points[i as usize].plan, &points[j as usize].plan);
        a.epoch_days
            .total_cmp(&b.epoch_days)
            .then(a.total_accelerators.cmp(&b.total_accelerators))
            .then(a.mem_per_accel_gb.total_cmp(&b.mem_per_accel_gb))
    });
    let mut frontier: Vec<u32> = Vec::new();
    let mut on_frontier = vec![false; points.len()];
    for &i in &order {
        let p = &points[i as usize].plan;
        if !frontier
            .iter()
            .any(|&f| dominates(&points[f as usize].plan, p))
        {
            frontier.push(i);
            on_frontier[i as usize] = true;
        }
    }
    points
        .iter()
        .zip(&on_frontier)
        .filter(|(_, &keep)| keep)
        .map(|(p, _)| p.clone())
        .collect()
}

/// The planner's selection criterion over an arbitrary point set: fewest
/// total accelerators, ties broken by higher FLOP utilization, remaining
/// ties by enumeration order.
pub fn argmin_point(points: &[SearchPoint]) -> Option<SearchPoint> {
    let mut best: Option<&SearchPoint> = None;
    for p in points {
        let better = match best {
            None => true,
            Some(b) => {
                p.plan.total_accelerators < b.plan.total_accelerators
                    || (p.plan.total_accelerators == b.plan.total_accelerators
                        && p.plan.flop_utilization > b.plan.flop_utilization)
            }
        };
        if better {
            best = Some(p);
        }
    }
    best.cloned()
}

/// Below this many (upper-bound) lattice points the per-call cost of
/// standing up the rayon pool exceeds what parallel evaluation saves, so
/// [`search`] walks the profiles sequentially. Either path merges in
/// profile order, so the output is bit-identical regardless.
const PAR_LATTICE_THRESHOLD: usize = 16_384;

/// Search the joint space with pruning, profiles fanned out over the rayon
/// pool (sequentially for small lattices — same result either way).
/// Bit-identical to [`enumerate_naive`] (see the module docs for why each
/// prune is exact).
pub fn search(space: &SearchSpace) -> SearchResult {
    let mut span = obs::span("parsim.search")
        .with_arg("profiles", space.profiles.len() as u64)
        .with_arg("workers", space.worker_candidates.len() as u64);
    assert!(
        space.worker_candidates.windows(2).all(|w| w[0] < w[1]),
        "worker candidates must ascend strictly"
    );
    let lattice_bound = space.profiles.len()
        * space.worker_candidates.len()
        * (1 + space.microbatch_candidates.len());
    let per_profile: Vec<(Vec<SearchPoint>, SearchStats)> = if lattice_bound < PAR_LATTICE_THRESHOLD
    {
        space
            .profiles
            .iter()
            .map(|p| search_profile(space, p))
            .collect()
    } else {
        space
            .profiles
            .par_iter()
            .map(|p| search_profile(space, p))
            .collect()
    };
    let mut stats = SearchStats::default();
    let mut feasible = Vec::new();
    for (points, s) in per_profile {
        stats.absorb(s);
        feasible.extend(points);
    }
    span.arg("considered", stats.considered);
    span.arg("evaluated", stats.evaluated);
    span.arg("pruned_memory", stats.pruned_memory);
    span.arg("pruned_over_cap", stats.pruned_over_cap);
    span.arg("pruned_comm_bound", stats.pruned_comm_bound);
    let pareto = pareto_frontier(&feasible);
    let best = argmin_point(&feasible);
    SearchResult {
        feasible,
        pareto,
        best,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> f64 {
        x * 1e9
    }

    fn toy_profile(key: &str, accel: Accelerator) -> CandidateProfile {
        let stages = vec![
            Stage {
                name: "a".into(),
                weight_bytes: gb(20.0),
                activation_bytes: gb(2.0),
            },
            Stage {
                name: "b".into(),
                weight_bytes: gb(4.0),
                activation_bytes: gb(6.0),
            },
        ];
        CandidateProfile {
            accel_key: key.into(),
            accel,
            subbatch: 64,
            step: WorkerStep {
                compute_seconds: 2.0,
                alg_flops: 20e12,
                gradient_bytes: gb(8.0),
                samples_per_step: 4096.0,
            },
            footprint_bytes: gb(32.0),
            stages,
        }
    }

    fn toy_space() -> SearchSpace {
        SearchSpace {
            profiles: vec![
                toy_profile("v100", Accelerator::v100_like()),
                toy_profile("a100", Accelerator::a100_like()),
            ],
            dataset_samples: 3e9,
            target_epoch_days: 5.0,
            usable_mem_fraction: 0.8,
            worker_candidates: pow2_candidates(1 << 12),
            microbatch_candidates: vec![1, 2, 4],
            max_total_accelerators: 4096,
            hop_overhead: CommConfig::default().hop_overhead,
        }
    }

    #[test]
    fn search_matches_naive_bitwise() {
        let space = toy_space();
        let result = search(&space);
        let naive = enumerate_naive(&space);
        assert_eq!(result.feasible, naive);
        assert!(!result.feasible.is_empty(), "toy space must be feasible");
    }

    #[test]
    fn pareto_has_no_dominated_point_and_best_is_feasible() {
        let result = search(&toy_space());
        for p in &result.pareto {
            assert!(
                !result.pareto.iter().any(|q| dominates(&q.plan, &p.plan)),
                "dominated point on frontier: {p:?}"
            );
        }
        let best = result.best.expect("feasible space has an argmin");
        assert!(result.feasible.contains(&best));
        // The argmin minimizes total accelerators over the feasible set.
        let min_total = result
            .feasible
            .iter()
            .map(|p| p.plan.total_accelerators)
            .min()
            .expect("nonempty");
        assert_eq!(best.plan.total_accelerators, min_total);
    }

    #[test]
    fn cap_and_memory_prunes_fire() {
        let mut space = toy_space();
        space.max_total_accelerators = 8;
        let result = search(&space);
        assert!(result.stats.pruned_over_cap > 0);
        assert!(result
            .feasible
            .iter()
            .all(|p| p.plan.total_accelerators <= 8));
        // A 32 GB unsplit footprint cannot fit 0.8 × 32 GiB, so the
        // ways=1 variant of the V100 profile is memory-pruned.
        assert!(result.stats.pruned_memory > 0);
        assert_eq!(result.feasible, enumerate_naive(&space));
    }

    #[test]
    fn comm_floor_prunes_hopeless_deadlines() {
        let mut space = toy_space();
        space.target_epoch_days = 0.02; // tighter than the allreduce alone
        let result = search(&space);
        assert!(result.stats.pruned_comm_bound > 0);
        assert_eq!(result.feasible, enumerate_naive(&space));
    }

    #[test]
    fn pareto_sweep_matches_the_reference() {
        let result = search(&toy_space());
        assert_eq!(
            result.pareto,
            pareto_frontier_reference(&result.feasible),
            "sweep frontier diverges from the all-pairs oracle"
        );
        // Exact duplicate points survive on both paths.
        let mut doubled = result.feasible.clone();
        doubled.extend(result.feasible.iter().cloned());
        assert_eq!(
            pareto_frontier(&doubled),
            pareto_frontier_reference(&doubled)
        );
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn pow2_candidates_cover_the_cap() {
        assert_eq!(pow2_candidates(1), vec![1]);
        assert_eq!(pow2_candidates(9), vec![1, 2, 4, 8]);
        assert_eq!(pow2_candidates(16), vec![1, 2, 4, 8, 16]);
        let all = pow2_candidates(u64::MAX);
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn repeated_searches_are_deterministic() {
        let space = toy_space();
        let a = search(&space);
        let b = search(&space);
        assert_eq!(a, b);
    }
}
