//! Gradient-reduction communication models (paper §6.2.1, after Patarasuk &
//! Yuan's bandwidth-optimal ring allreduce).

use serde::{Deserialize, Serialize};

/// Communication cost parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommConfig {
    /// Inter-device link bandwidth, B/s (Table 4: 56 GB/s).
    pub link_bw: f64,
    /// Per-hop overhead, seconds: link latency plus per-step software and
    /// synchronization cost. The default is calibrated so the word-LM case
    /// study reproduces the paper's Figure 12 utilization curve (38% at 512
    /// workers, 34% at 1024).
    pub hop_overhead: f64,
}

impl Default for CommConfig {
    fn default() -> CommConfig {
        CommConfig {
            link_bw: 56e9,
            hop_overhead: 2.4e-3,
        }
    }
}

/// Ring allreduce time for `bytes` over `workers` devices:
/// `2·(N−1)·(α + s/(N·bw))` — bandwidth-optimal; each device sends its
/// `s/N` chunk around the ring twice (reduce-scatter + allgather).
pub fn ring_allreduce_seconds(bytes: f64, workers: u64, comm: &CommConfig) -> f64 {
    assert!(bytes >= 0.0);
    if workers <= 1 {
        return 0.0;
    }
    let n = workers as f64;
    2.0 * (n - 1.0) * (comm.hop_overhead + bytes / (n * comm.link_bw))
}

/// Binary-tree allreduce (reduce + broadcast): `2·⌈log₂N⌉·(α + s/bw)`.
/// Latency-optimal but moves the full buffer at every level — the ablation
/// baseline against the ring.
pub fn tree_allreduce_seconds(bytes: f64, workers: u64, comm: &CommConfig) -> f64 {
    assert!(bytes >= 0.0);
    if workers <= 1 {
        return 0.0;
    }
    let levels = (workers as f64).log2().ceil();
    2.0 * levels * (comm.hop_overhead + bytes / comm.link_bw)
}

/// Discrete-event cross-check of the ring: simulate the 2(N−1) hop phases
/// explicitly, each phase completing when the slowest device finishes its
/// send. With homogeneous devices this must equal the closed form.
pub fn ring_allreduce_discrete_event(bytes: f64, workers: u64, comm: &CommConfig) -> f64 {
    if workers <= 1 {
        return 0.0;
    }
    let _span = obs::span("parsim.allreduce_des")
        .with_arg("bytes", bytes)
        .with_arg("workers", workers);
    let n = workers as usize;
    let chunk = bytes / n as f64;
    let mut clock = vec![0.0f64; n];
    // reduce-scatter then allgather: 2(N−1) phases; in each phase device i
    // sends one chunk to device (i+1) mod N and cannot start before both it
    // and its receiver reached the phase barrier.
    for _phase in 0..2 * (n - 1) {
        let mut next = clock.clone();
        for (i, next_t) in next.iter_mut().enumerate() {
            let peer = (i + n - 1) % n; // receives from the left neighbor
            let start = clock[i].max(clock[peer]);
            *next_t = start + comm.hop_overhead + chunk / comm.link_bw;
        }
        clock = next;
    }
    clock.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm() -> CommConfig {
        CommConfig::default()
    }

    #[test]
    fn single_worker_is_free() {
        assert_eq!(ring_allreduce_seconds(1e9, 1, &comm()), 0.0);
        assert_eq!(tree_allreduce_seconds(1e9, 1, &comm()), 0.0);
        assert_eq!(ring_allreduce_discrete_event(1e9, 1, &comm()), 0.0);
    }

    #[test]
    fn ring_bandwidth_term_saturates_at_2s_over_bw() {
        // As N → ∞ the bandwidth component approaches 2·s/bw.
        let c = CommConfig {
            hop_overhead: 0.0,
            ..comm()
        };
        let s = 33.6e9; // LSTM-p gradients
        let t = ring_allreduce_seconds(s, 4096, &c);
        let limit = 2.0 * s / c.link_bw;
        assert!(t < limit && t > 0.99 * limit, "{t} vs {limit}");
    }

    #[test]
    fn discrete_event_matches_closed_form() {
        let c = comm();
        for &n in &[2u64, 3, 8, 64, 500] {
            let des = ring_allreduce_discrete_event(1e9, n, &c);
            let analytic = ring_allreduce_seconds(1e9, n, &c);
            let rel = (des - analytic).abs() / analytic;
            assert!(rel < 1e-9, "N={n}: des {des} vs analytic {analytic}");
        }
    }

    #[test]
    fn tree_beats_ring_for_tiny_buffers_many_workers() {
        // Latency-bound regime: tree's log N hops win.
        let c = comm();
        let t_ring = ring_allreduce_seconds(1e3, 1024, &c);
        let t_tree = tree_allreduce_seconds(1e3, 1024, &c);
        assert!(t_tree < t_ring);
    }

    #[test]
    fn ring_beats_tree_for_large_buffers() {
        // Bandwidth-bound regime: ring's s/N chunks win.
        let c = comm();
        let t_ring = ring_allreduce_seconds(33.6e9, 64, &c);
        let t_tree = tree_allreduce_seconds(33.6e9, 64, &c);
        assert!(t_ring < t_tree);
    }

    #[test]
    fn fig12_overhead_calibration() {
        // The §6 case study: 33.6 GB of LSTM-p gradients. The paper's curve
        // implies ~3.7 s of overhead at 512 workers and ~6.1 s at 1024.
        let c = comm();
        let g = 33.6e9;
        let t512 = ring_allreduce_seconds(g, 512, &c);
        let t1024 = ring_allreduce_seconds(g, 1024, &c);
        assert!((t512 - 3.7).abs() < 0.4, "512 workers: {t512}");
        assert!((t1024 - 6.1).abs() < 0.6, "1024 workers: {t1024}");
    }
}
