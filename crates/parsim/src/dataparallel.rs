//! Synchronous data-parallel SGD scaling (paper §6.2.1, Figure 12).

use roofline::Accelerator;
use serde::{Deserialize, Serialize};

use crate::allreduce::{ring_allreduce_seconds, CommConfig};

/// Description of one data-parallel worker's training step.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkerStep {
    /// Compute time of one step on one worker, seconds (typically the
    /// cache-hierarchy-aware per-op roofline time).
    pub compute_seconds: f64,
    /// Algorithmic FLOPs of one worker's step.
    pub alg_flops: f64,
    /// Gradient bytes to allreduce (4·params for f32 SGD).
    pub gradient_bytes: f64,
    /// Training samples one worker consumes per step (e.g. `b·q` tokens for
    /// an LM, `b` images for a classifier).
    pub samples_per_step: f64,
}

/// One point of the data-parallel scaling curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Number of data-parallel workers.
    pub workers: u64,
    /// Global batch in samples-per-step terms (`workers · samples_per_step`).
    pub global_samples_per_step: f64,
    /// Wall-clock step time including gradient reduction, seconds.
    pub step_seconds: f64,
    /// Time spent in the allreduce, seconds.
    pub comm_seconds: f64,
    /// Days per epoch over `dataset_samples`.
    pub epoch_days: f64,
    /// Algorithmic FLOP utilization across the fleet.
    pub flop_utilization: f64,
}

/// Simulate synchronous SGD over a ring allreduce for one worker count.
pub fn data_parallel_point(
    step: &WorkerStep,
    workers: u64,
    dataset_samples: f64,
    accel: &Accelerator,
    comm: &CommConfig,
) -> ScalePoint {
    assert!(workers >= 1);
    let comm_seconds = ring_allreduce_seconds(step.gradient_bytes, workers, comm);
    let step_seconds = step.compute_seconds + comm_seconds;
    let global_samples_per_step = workers as f64 * step.samples_per_step;
    let steps_per_epoch = dataset_samples / global_samples_per_step;
    let epoch_days = steps_per_epoch * step_seconds / 86_400.0;
    // Fleet utilization: each worker performs `alg_flops` useful FLOPs per
    // wall-clock step.
    let flop_utilization = step.alg_flops / (step_seconds * accel.peak_flops);
    ScalePoint {
        workers,
        global_samples_per_step,
        step_seconds,
        comm_seconds,
        epoch_days,
        flop_utilization,
    }
}

/// [`data_parallel_point`] with gradient compression applied before the
/// allreduce (paper §6.2.3's communication-reduction direction): wire bytes
/// shrink per the scheme, and the encode/decode cost is added to the step.
pub fn data_parallel_point_compressed(
    step: &WorkerStep,
    workers: u64,
    dataset_samples: f64,
    accel: &Accelerator,
    comm: &CommConfig,
    compression: crate::compression::GradCompression,
) -> ScalePoint {
    let params = step.gradient_bytes / 4.0; // baseline is f32
    let codec = compression.codec_seconds(params, accel.achievable_flops());
    let compressed = WorkerStep {
        compute_seconds: step.compute_seconds + codec,
        gradient_bytes: compression.wire_bytes(params),
        ..*step
    };
    data_parallel_point(&compressed, workers, dataset_samples, accel, comm)
}

/// The Figure 12 sweep: epoch time and utilization across worker counts.
pub fn data_parallel_sweep(
    step: &WorkerStep,
    worker_counts: &[u64],
    dataset_samples: f64,
    accel: &Accelerator,
    comm: &CommConfig,
) -> Vec<ScalePoint> {
    worker_counts
        .iter()
        .map(|&n| data_parallel_point(step, n, dataset_samples, accel, comm))
        .collect()
}

/// Smallest worker count from `candidates` whose epoch time meets
/// `target_days`, if any.
pub fn workers_for_epoch_target(
    step: &WorkerStep,
    candidates: &[u64],
    dataset_samples: f64,
    target_days: f64,
    accel: &Accelerator,
    comm: &CommConfig,
) -> Option<ScalePoint> {
    candidates
        .iter()
        .map(|&n| data_parallel_point(step, n, dataset_samples, accel, comm))
        .find(|p| p.epoch_days <= target_days)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §6 case-study worker: cache-aware LSTM-p step.
    fn case_study_step() -> WorkerStep {
        WorkerStep {
            compute_seconds: 17.07,
            alg_flops: 123e12,
            gradient_bytes: 33.6e9,
            samples_per_step: 128.0 * 25.45, // tokens per worker-step
        }
    }

    /// Dataset size chosen so the single-accelerator cache-aware epoch is
    /// the paper's 4671 days (§6.1).
    fn dataset() -> f64 {
        4671.0 * 86_400.0 / 17.07 * 128.0 * 25.45
    }

    #[test]
    fn epoch_time_decreases_monotonically() {
        let a = Accelerator::v100_like();
        let c = CommConfig::default();
        let sweep = data_parallel_sweep(
            &case_study_step(),
            &[1, 4, 16, 64, 256, 1024, 4096],
            dataset(),
            &a,
            &c,
        );
        for w in sweep.windows(2) {
            assert!(w[1].epoch_days < w[0].epoch_days);
            assert!(w[1].flop_utilization <= w[0].flop_utilization);
        }
    }

    #[test]
    fn paper_fig12_anchor_points() {
        // Paper: 1024 workers → 6.2 days/epoch at 34% utilization;
        //         512 workers → 11.1 days at 38%.
        let a = Accelerator::v100_like();
        let c = CommConfig::default();
        let p1024 = data_parallel_point(&case_study_step(), 1024, dataset(), &a, &c);
        assert!((p1024.epoch_days - 6.2).abs() < 0.5, "{}", p1024.epoch_days);
        assert!(
            (p1024.flop_utilization - 0.34).abs() < 0.03,
            "{}",
            p1024.flop_utilization
        );
        let p512 = data_parallel_point(&case_study_step(), 512, dataset(), &a, &c);
        assert!((p512.epoch_days - 11.1).abs() < 0.8, "{}", p512.epoch_days);
        assert!(
            (p512.flop_utilization - 0.38).abs() < 0.03,
            "{}",
            p512.flop_utilization
        );
    }

    #[test]
    fn utilization_at_one_worker_matches_compute_only() {
        let a = Accelerator::v100_like();
        let c = CommConfig::default();
        let p = data_parallel_point(&case_study_step(), 1, dataset(), &a, &c);
        assert_eq!(p.comm_seconds, 0.0);
        let expected = 123e12 / (17.07 * a.peak_flops);
        assert!((p.flop_utilization - expected).abs() < 1e-12);
    }

    #[test]
    fn compression_improves_scaling_at_high_worker_counts() {
        use crate::compression::GradCompression;
        let a = Accelerator::v100_like();
        let c = CommConfig::default();
        let step = case_study_step();
        let plain = data_parallel_point(&step, 4096, dataset(), &a, &c);
        let int8 =
            data_parallel_point_compressed(&step, 4096, dataset(), &a, &c, GradCompression::Int8);
        let ternary = data_parallel_point_compressed(
            &step,
            4096,
            dataset(),
            &a,
            &c,
            GradCompression::Ternary,
        );
        assert!(int8.comm_seconds < plain.comm_seconds);
        assert!(ternary.comm_seconds < int8.comm_seconds);
        assert!(int8.epoch_days < plain.epoch_days);
        // None round-trips exactly.
        let none =
            data_parallel_point_compressed(&step, 4096, dataset(), &a, &c, GradCompression::None);
        assert!((none.step_seconds - plain.step_seconds).abs() < 1e-12);
    }

    #[test]
    fn compression_cannot_remove_latency_floor() {
        // The ring's 2(N−1)·α hop overhead is payload-independent, so even
        // infinite compression leaves an overhead floor — the reason the
        // paper also cites latency-oriented work.
        use crate::compression::GradCompression;
        let a = Accelerator::v100_like();
        let c = CommConfig::default();
        let extreme = data_parallel_point_compressed(
            &case_study_step(),
            1024,
            dataset(),
            &a,
            &c,
            GradCompression::TopK { ratio: 10_000 },
        );
        let floor = 2.0 * 1023.0 * c.hop_overhead;
        assert!(extreme.comm_seconds >= floor);
        assert!(extreme.comm_seconds < floor * 1.1);
    }

    #[test]
    fn workers_for_target_finds_first_adequate() {
        let a = Accelerator::v100_like();
        let c = CommConfig::default();
        let candidates: Vec<u64> = (0..14).map(|i| 1 << i).collect();
        let p = workers_for_epoch_target(&case_study_step(), &candidates, dataset(), 7.0, &a, &c)
            .expect("some count meets 7 days");
        assert!(p.epoch_days <= 7.0);
        // The next-smaller power of two must miss the target.
        let prev = data_parallel_point(&case_study_step(), p.workers / 2, dataset(), &a, &c);
        assert!(prev.epoch_days > 7.0);
    }
}
