//! Gradient-compression models for communication reduction (paper §6.2.3,
//! after its references: QSGD (Alistarh et al.), TernGrad (Wen et al.), and
//! deep gradient compression (Lin et al.)).
//!
//! Each scheme trades allreduce bytes for (a) extra pointwise compute to
//! encode/decode and (b) — outside this model's scope — convergence risk.
//! The paper projects 1.5–10× memory/communication reductions from this
//! family of techniques.

use serde::{Deserialize, Serialize};

/// A gradient-compression scheme applied before the allreduce.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GradCompression {
    /// Full-precision f32 gradients (the paper's baseline).
    None,
    /// Half-precision gradients: 2× fewer bytes, negligible encode cost.
    Fp16,
    /// QSGD-style 8-bit stochastic quantization: 4× fewer bytes plus a
    /// per-tensor scale.
    Int8,
    /// TernGrad: ternary levels {−1, 0, +1} packed at 2 bits: 16× fewer
    /// bytes.
    Ternary,
    /// Deep gradient compression: top-k sparsification; only `1/ratio` of
    /// the gradient (value + index) is sent.
    TopK {
        /// Compression ratio (e.g. 100 sends 1% of entries). Values and
        /// 32-bit indices both travel, so wire bytes are `8/ratio` per
        /// parameter.
        ratio: u32,
    },
}

impl GradCompression {
    /// Wire bytes per parameter (f32 baseline = 4).
    pub fn bytes_per_param(&self) -> f64 {
        match self {
            GradCompression::None => 4.0,
            GradCompression::Fp16 => 2.0,
            GradCompression::Int8 => 1.0,
            GradCompression::Ternary => 0.25,
            GradCompression::TopK { ratio } => {
                assert!(*ratio >= 1);
                8.0 / *ratio as f64
            }
        }
    }

    /// Communication reduction vs f32 (the paper's "1.5–10×" band covers
    /// Fp16 through TopK).
    pub fn reduction(&self) -> f64 {
        4.0 / self.bytes_per_param()
    }

    /// Encode+decode FLOPs per parameter (quantization / selection cost).
    pub fn codec_flops_per_param(&self) -> f64 {
        match self {
            GradCompression::None => 0.0,
            GradCompression::Fp16 => 1.0,
            GradCompression::Int8 => 4.0, // scale, clamp, round, rescale
            GradCompression::Ternary => 4.0,
            GradCompression::TopK { .. } => 8.0, // selection + gather/scatter
        }
    }

    /// Wire bytes for a gradient of `params` parameters.
    pub fn wire_bytes(&self, params: f64) -> f64 {
        self.bytes_per_param() * params
    }

    /// Extra per-step codec time on an accelerator with achievable
    /// throughput `flops_per_second`.
    pub fn codec_seconds(&self, params: f64, flops_per_second: f64) -> f64 {
        assert!(flops_per_second > 0.0);
        self.codec_flops_per_param() * params / flops_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_cover_paper_band() {
        // Paper: "may reduce ... by 1.5–10×".
        assert_eq!(GradCompression::None.reduction(), 1.0);
        assert_eq!(GradCompression::Fp16.reduction(), 2.0);
        assert_eq!(GradCompression::Int8.reduction(), 4.0);
        assert_eq!(GradCompression::Ternary.reduction(), 16.0);
        assert_eq!(GradCompression::TopK { ratio: 100 }.reduction(), 50.0);
    }

    #[test]
    fn wire_bytes_scale_with_params() {
        let p = 8.4e9;
        assert_eq!(GradCompression::None.wire_bytes(p), 4.0 * p);
        assert_eq!(GradCompression::Ternary.wire_bytes(p), p / 4.0);
    }

    #[test]
    fn codec_cost_is_small_vs_saved_transfer() {
        // For the case-study gradients (8.4B params) at V100 throughput,
        // Int8's codec costs ~3 ms while saving seconds of ring time.
        let p = 8.4e9;
        let codec = GradCompression::Int8.codec_seconds(p, 12.5e12);
        assert!(codec < 0.01, "codec {codec}");
        let saved_bytes = GradCompression::None.wire_bytes(p) - GradCompression::Int8.wire_bytes(p);
        let saved_seconds = 2.0 * saved_bytes / 56e9; // ring bandwidth term
        assert!(saved_seconds > 50.0 * codec);
    }

    #[test]
    #[should_panic(expected = "ratio >= 1")]
    fn topk_requires_positive_ratio() {
        let _ = GradCompression::TopK { ratio: 0 }.bytes_per_param();
    }
}
