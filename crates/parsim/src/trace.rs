//! Export simulated pipeline schedules as trace events.

use obs::{EventKind, JsonValue, TraceEvent};

use crate::pipeline_des::PipelineEvent;

/// Convert a traced pipeline schedule into Chrome-trace events on a
/// *simulated* timeline: `thread` encodes the pipeline stage (one track per
/// stage) and timestamps are simulated seconds scaled to microseconds. Feed
/// the result to [`obs::Recorder::record_raw`] or write it directly with
/// [`obs::Recorder::write_chrome_trace`].
pub fn pipeline_trace_events(events: &[PipelineEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .map(|e| TraceEvent {
            name: format!("microbatch {}", e.microbatch),
            category: "parsim.pipeline".to_string(),
            start_us: (e.start_seconds * 1e6) as u64,
            dur_us: ((e.end_seconds - e.start_seconds) * 1e6).max(1.0) as u64,
            thread: e.stage as u64,
            kind: EventKind::Complete,
            args: vec![
                ("stage".to_string(), JsonValue::from(e.stage)),
                ("microbatch".to_string(), JsonValue::from(e.microbatch)),
                (
                    "duration_seconds".to_string(),
                    JsonValue::from(e.end_seconds - e.start_seconds),
                ),
            ],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline_des::simulate_pipeline_traced;

    #[test]
    fn events_map_to_stage_tracks() {
        let (_, events) = simulate_pipeline_traced(&[0.5, 0.25], 3);
        let trace = pipeline_trace_events(&events);
        assert_eq!(trace.len(), events.len());
        for (t, e) in trace.iter().zip(&events) {
            assert_eq!(t.thread, e.stage as u64);
            assert_eq!(t.start_us, (e.start_seconds * 1e6) as u64);
            assert!(t.dur_us >= 1);
            assert_eq!(t.kind, EventKind::Complete);
        }
        // Renders to valid chrome-trace JSON objects.
        assert!(trace[0].to_chrome().contains("\"ph\":\"X\""));
    }
}
