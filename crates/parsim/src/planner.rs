//! Automatic parallelism planning (paper §6.2.3: "Frameworks should aim to
//! automatically and dynamically subdivide the computation, automatically
//! map appropriate compute graph portions to compute resources").
//!
//! Given one worker's step profile and a training-time target, the planner
//! searches the (data-parallel workers × model-parallel ways) grid for the
//! cheapest fleet that (a) fits each shard in accelerator memory and
//! (b) meets the epoch deadline — the decision the paper works through by
//! hand in §6.2.

use roofline::Accelerator;
use serde::{Deserialize, Serialize};

use crate::allreduce::CommConfig;
use crate::dataparallel::WorkerStep;
use crate::modelparallel::Stage;
use crate::search::{plan_point, split_variants};

/// Model-parallel strategy the planner may apply within one worker.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ModelParallelism {
    /// No intra-worker split (requires the model to fit one accelerator).
    None,
    /// Layer-wise pipeline with the given number of in-flight microbatches.
    LayerPipeline {
        /// Concurrent microbatches (1 = strictly sequential stages).
        microbatches: u64,
    },
}

/// The planning problem.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlanRequest {
    /// One worker's step profile (compute time, FLOPs, gradient bytes,
    /// samples per step).
    pub step: WorkerStep,
    /// Per-worker training-step footprint, bytes.
    pub footprint_bytes: f64,
    /// Layer-parallel stages of the model (for footprint splitting); must
    /// be non-empty. A single stage disables model parallelism.
    pub stages: Vec<Stage>,
    /// Dataset size, samples.
    pub dataset_samples: f64,
    /// Epoch deadline, days.
    pub target_epoch_days: f64,
    /// Usable fraction of accelerator memory (swap threshold).
    pub usable_mem_fraction: f64,
    /// Candidate data-parallel worker counts (e.g. powers of two).
    pub worker_candidates: Vec<u64>,
    /// Intra-worker pipelining strategy when a model split is needed.
    pub model_parallelism: ModelParallelism,
}

impl PlanRequest {
    /// A sensible default search over powers of two up to 2¹⁴ workers with
    /// 2-microbatch pipelining.
    pub fn new(
        step: WorkerStep,
        footprint_bytes: f64,
        stages: Vec<Stage>,
        dataset_samples: f64,
        target_epoch_days: f64,
    ) -> PlanRequest {
        PlanRequest {
            step,
            footprint_bytes,
            stages,
            dataset_samples,
            target_epoch_days,
            usable_mem_fraction: 0.8,
            worker_candidates: (0..=14).map(|i| 1u64 << i).collect(),
            model_parallelism: ModelParallelism::LayerPipeline { microbatches: 2 },
        }
    }
}

/// A feasible plan found by the planner.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Data-parallel worker count.
    pub dp_workers: u64,
    /// Accelerators per worker (1 = no model parallelism).
    pub mp_ways: u64,
    /// Total accelerators (`dp_workers · mp_ways`).
    pub total_accelerators: u64,
    /// Wall-clock step time, seconds.
    pub step_seconds: f64,
    /// Days per epoch.
    pub epoch_days: f64,
    /// Fleet algorithmic FLOP utilization.
    pub flop_utilization: f64,
    /// Peak per-accelerator footprint, GB.
    pub mem_per_accel_gb: f64,
}

/// Search the plan space; returns the feasible plan with the fewest total
/// accelerators (ties broken by higher utilization), or `None` if no
/// candidate meets the deadline.
///
/// Point evaluation is shared with [`crate::search`]
/// ([`split_variants`] + [`plan_point`]), so this is the same arithmetic
/// the full plan-search subsystem runs — just restricted to one
/// accelerator and the request's single pipelining strategy.
pub fn plan(request: &PlanRequest, accel: &Accelerator, comm: &CommConfig) -> Option<Plan> {
    assert!(
        !request.stages.is_empty(),
        "planner needs at least one stage"
    );
    let usable = accel.mem_capacity * request.usable_mem_fraction;
    let micros: &[u64] = match request.model_parallelism {
        ModelParallelism::None => &[],
        ModelParallelism::LayerPipeline { ref microbatches } => std::slice::from_ref(microbatches),
    };
    let mut best: Option<Plan> = None;
    for variant in split_variants(
        &request.stages,
        request.footprint_bytes,
        request.step.compute_seconds,
        micros,
    ) {
        if variant.mem_per_accel > usable {
            continue; // would swap — rejected outright, like the paper
        }
        for &workers in &request.worker_candidates {
            let candidate = plan_point(
                &request.step,
                &variant,
                workers,
                request.dataset_samples,
                accel.peak_flops,
                comm,
            );
            if candidate.epoch_days > request.target_epoch_days {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => {
                    candidate.total_accelerators < b.total_accelerators
                        || (candidate.total_accelerators == b.total_accelerators
                            && candidate.flop_utilization > b.flop_utilization)
                }
            };
            if better {
                best = Some(candidate);
            }
            break; // candidates ascend; the first feasible count is minimal
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> f64 {
        x * 1e9
    }

    /// The §6 case study as a planning problem.
    fn case_study_request(target_days: f64) -> PlanRequest {
        let step = WorkerStep {
            compute_seconds: 17.07,
            alg_flops: 123e12,
            gradient_bytes: 33.6e9,
            samples_per_step: 128.0 * 25.45,
        };
        let stages = vec![
            Stage {
                name: "embedding".into(),
                weight_bytes: gb(59.5),
                activation_bytes: gb(0.5),
            },
            Stage {
                name: "lstm0".into(),
                weight_bytes: gb(4.3),
                activation_bytes: gb(12.7),
            },
            Stage {
                name: "lstm1".into(),
                weight_bytes: gb(4.3),
                activation_bytes: gb(12.7),
            },
            Stage {
                name: "out".into(),
                weight_bytes: gb(13.0),
                activation_bytes: gb(19.0),
            },
        ];
        let dataset = 4671.0 * 86_400.0 / 17.07 * 128.0 * 25.45;
        let mut req = PlanRequest::new(step, gb(113.8), stages, dataset, target_days);
        // The paper places stages against the full 32 GB capacity.
        req.usable_mem_fraction = 1.0;
        req
    }

    #[test]
    fn reproduces_case_study_shape() {
        // 113.8 GB cannot fit one 32 GB accelerator, so the planner must go
        // 4-way model parallel and then scale data parallelism to the
        // 7-day target — the paper's hand-derived answer.
        let accel = Accelerator::v100_like();
        let comm = CommConfig::default();
        let plan = plan(&case_study_request(7.5), &accel, &comm).expect("feasible");
        assert_eq!(plan.mp_ways, 4);
        assert!(plan.epoch_days <= 7.5);
        // Waterfilled peak is exactly the paper's 32 GB (within the 32 GiB
        // = 34.4 GB capacity the paper places against).
        assert!(
            plan.mem_per_accel_gb <= 32.1,
            "per-accel {} GB must fit",
            plan.mem_per_accel_gb
        );
        // The paper lands at 2048 total accelerators for ~7 days; the
        // planner's pipeline schedule should be in the same decade.
        assert!(
            (512..=4096).contains(&plan.total_accelerators),
            "total {}",
            plan.total_accelerators
        );
    }

    #[test]
    fn infeasible_deadline_returns_none() {
        let accel = Accelerator::v100_like();
        let comm = CommConfig::default();
        assert!(plan(&case_study_request(0.0001), &accel, &comm).is_none());
    }

    #[test]
    fn small_model_avoids_model_parallelism() {
        let accel = Accelerator::v100_like();
        let comm = CommConfig::default();
        let mut req = case_study_request(30.0);
        // Shrink the problem to a model that fits one accelerator.
        req.footprint_bytes = gb(10.0);
        for s in &mut req.stages {
            s.weight_bytes /= 20.0;
            s.activation_bytes /= 20.0;
        }
        let plan = plan(&req, &accel, &comm).expect("feasible");
        assert_eq!(plan.mp_ways, 1, "no split needed for a 10 GB model");
    }

    #[test]
    fn looser_deadline_needs_fewer_accelerators() {
        let accel = Accelerator::v100_like();
        let comm = CommConfig::default();
        let tight = plan(&case_study_request(3.0), &accel, &comm).expect("feasible");
        let loose = plan(&case_study_request(60.0), &accel, &comm).expect("feasible");
        assert!(loose.total_accelerators < tight.total_accelerators);
    }

    #[test]
    fn bigger_accelerator_memory_removes_the_split() {
        let mut accel = Accelerator::v100_like();
        accel.mem_capacity *= 8.0; // 256 GB HBM future
        let comm = CommConfig::default();
        let plan = plan(&case_study_request(7.5), &accel, &comm).expect("feasible");
        assert_eq!(plan.mp_ways, 1, "capacity obviates model parallelism");
        // And utilization improves vs the split plan on the small-memory
        // accelerator (the paper's capacity argument in one assertion).
        let small = super::plan(&case_study_request(7.5), &Accelerator::v100_like(), &comm)
            .expect("feasible");
        assert!(plan.flop_utilization > small.flop_utilization);
    }
}
