//! Intra-layer (tensor) model parallelism — the "improved model parallelism
//! techniques" the paper hopes can "recover some of the ~23% algorithmic
//! FLOP utilization lost to layer parallelism" (§6.2.3).
//!
//! Each layer's matrix multiplies are split column-wise across `ways`
//! accelerators: compute and weight memory divide by `ways`, at the price
//! of an activation allreduce per layer boundary per microstep (forward and
//! backward), Megatron-style.

use serde::{Deserialize, Serialize};

use crate::allreduce::{ring_allreduce_seconds, CommConfig};

/// Configuration of a tensor-parallel execution of one training step.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TensorParallelConfig {
    /// Number of accelerators the layers are split across.
    pub ways: u64,
    /// Layer boundaries whose activations must be synchronized per step,
    /// counting forward and backward separately (for an unrolled RNN this
    /// is `2 · layers · timesteps`).
    pub sync_points: u64,
    /// Bytes of activations exchanged at each sync point (per device group).
    pub bytes_per_sync: f64,
}

/// Result of the tensor-parallel timing model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TensorParallelPlan {
    /// Wall-clock compute+sync time of one step, seconds.
    pub step_seconds: f64,
    /// Total time spent in activation allreduces.
    pub sync_seconds: f64,
    /// Per-accelerator weight (and gradient) bytes after the split.
    pub weight_bytes_per_accel: f64,
    /// Speedup over the unsplit step.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / ways`).
    pub efficiency: f64,
}

/// Time a training step of `compute_seconds` and `weight_bytes` under
/// tensor parallelism.
pub fn tensor_parallel_plan(
    compute_seconds: f64,
    weight_bytes: f64,
    cfg: &TensorParallelConfig,
    comm: &CommConfig,
) -> TensorParallelPlan {
    assert!(cfg.ways >= 1 && compute_seconds >= 0.0);
    let sync_seconds =
        cfg.sync_points as f64 * ring_allreduce_seconds(cfg.bytes_per_sync, cfg.ways, comm);
    let step_seconds = compute_seconds / cfg.ways as f64 + sync_seconds;
    let speedup = if step_seconds > 0.0 {
        compute_seconds / step_seconds
    } else {
        1.0
    };
    TensorParallelPlan {
        step_seconds,
        sync_seconds,
        weight_bytes_per_accel: weight_bytes / cfg.ways as f64,
        speedup,
        efficiency: speedup / cfg.ways as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelparallel::{layer_parallel_plan, Stage};

    /// The §6 LSTM-p step: ~17 s cache-aware compute, 67 GB of weights+grads,
    /// b=128 activations of ~17 MB per layer boundary, 2 layers × 80 steps
    /// forward+backward.
    fn case_study() -> (f64, f64, TensorParallelConfig) {
        (
            17.07,
            67.2e9,
            TensorParallelConfig {
                ways: 4,
                sync_points: 2 * 2 * 80,
                bytes_per_sync: 128.0 * 8192.0 * 4.0,
            },
        )
    }

    #[test]
    fn four_way_split_divides_memory_exactly() {
        let (c, w, cfg) = case_study();
        let plan = tensor_parallel_plan(c, w, &cfg, &CommConfig::default());
        assert_eq!(plan.weight_bytes_per_accel, w / 4.0);
    }

    #[test]
    fn recovers_utilization_lost_to_layer_parallelism() {
        // The paper's §6.2.3 hope, quantified: layer parallelism with 2
        // microbatches achieves ~0.40 efficiency at 4 ways; tensor
        // parallelism on the same step does better despite the per-timestep
        // activation syncs.
        let (c, w, cfg) = case_study();
        let comm = CommConfig::default();
        let tensor = tensor_parallel_plan(c, w, &cfg, &comm);
        let stages: Vec<Stage> = (0..4)
            .map(|i| Stage {
                name: format!("s{i}"),
                weight_bytes: w / 4.0,
                activation_bytes: 0.0,
            })
            .collect();
        let layer = layer_parallel_plan(&stages, c, 2);
        let layer_efficiency = c / layer.step_compute_seconds / 4.0;
        assert!(
            tensor.efficiency > layer_efficiency,
            "tensor {} should beat layer {}",
            tensor.efficiency,
            layer_efficiency
        );
        // ~0.48 with the Fig-12-calibrated hop overhead (which is
        // pessimistic for small intra-node syncs) vs ~0.40 for layer
        // parallelism — a partial recovery, as the paper anticipated.
        assert!(tensor.efficiency > 0.44, "{}", tensor.efficiency);
    }

    #[test]
    fn sync_overhead_grows_with_ways() {
        let (c, w, mut cfg) = case_study();
        let comm = CommConfig::default();
        let mut last_eff = 1.1;
        for ways in [1u64, 2, 4, 8, 16] {
            cfg.ways = ways;
            let plan = tensor_parallel_plan(c, w, &cfg, &comm);
            assert!(
                plan.efficiency < last_eff,
                "efficiency must fall with ways: {} at {ways}",
                plan.efficiency
            );
            last_eff = plan.efficiency;
        }
    }

    #[test]
    fn one_way_is_identity() {
        let (c, w, mut cfg) = case_study();
        cfg.ways = 1;
        let plan = tensor_parallel_plan(c, w, &cfg, &CommConfig::default());
        assert_eq!(plan.step_seconds, c);
        assert_eq!(plan.speedup, 1.0);
        assert_eq!(plan.sync_seconds, 0.0);
    }

    #[test]
    fn latency_bound_at_many_small_syncs() {
        // RNN tensor parallelism is hop-latency bound: 320 syncs × the ring
        // overhead dominates the tiny activation payloads.
        let (c, w, cfg) = case_study();
        let comm = CommConfig::default();
        let plan = tensor_parallel_plan(c, w, &cfg, &comm);
        let latency_floor =
            cfg.sync_points as f64 * 2.0 * (cfg.ways - 1) as f64 * comm.hop_overhead;
        assert!(plan.sync_seconds >= latency_floor);
        assert!(plan.sync_seconds < latency_floor * 1.5);
    }
}
