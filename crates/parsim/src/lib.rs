//! `parsim` — analytical and discrete-event simulation of parallel DL
//! training: ring/tree allreduce, synchronous data-parallel SGD scaling
//! (paper Figure 12), layer-wise model parallelism with pipelining, and
//! embedding sharding (paper Table 5).
//!
//! ```
//! use parsim::{ring_allreduce_seconds, CommConfig};
//!
//! // 33.6 GB of gradients over 1024 workers at 56 GB/s.
//! let t = ring_allreduce_seconds(33.6e9, 1024, &CommConfig::default());
//! assert!(t > 1.0 && t < 10.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod allreduce;
mod compression;
mod dataparallel;
mod infersearch;
mod modelparallel;
mod pipeline_des;
mod planner;
mod search;
mod tensorparallel;
mod trace;

pub use allreduce::{
    ring_allreduce_discrete_event, ring_allreduce_seconds, tree_allreduce_seconds, CommConfig,
};
pub use compression::GradCompression;
pub use dataparallel::{
    data_parallel_point, data_parallel_point_compressed, data_parallel_sweep,
    workers_for_epoch_target, ScalePoint, WorkerStep,
};
pub use infersearch::{
    enumerate_infer_naive, infer_argmin_point, infer_pareto_frontier,
    infer_pareto_frontier_reference, infer_plan_point, infer_search, InferPlanPoint, InferProfile,
    InferSearchResult, InferSearchSpace, InferSearchStats, SloTarget,
};
pub use modelparallel::{
    layer_parallel_plan, peak_footprint, shard_largest_weight, waterfill_largest_weight,
    LayerParallelPlan, Stage,
};
pub use pipeline_des::{
    simulate_balanced_pipeline, simulate_pipeline, simulate_pipeline_traced, PipelineEvent,
    PipelineSim,
};
pub use planner::{plan, ModelParallelism, Plan, PlanRequest};
pub use search::{
    argmin_point, enumerate_naive, pareto_frontier, pareto_frontier_reference, plan_point,
    pow2_candidates, search, split_variants, CandidateProfile, SearchPoint, SearchResult,
    SearchSpace, SearchStats, VariantCost,
};
pub use tensorparallel::{tensor_parallel_plan, TensorParallelConfig, TensorParallelPlan};
pub use trace::pipeline_trace_events;
