//! Dot-product attention machinery shared by NMT and speech (Figs 4, 5).

use cgraph::{Graph, GraphError, PointwiseFn, TensorId};
use symath::Expr;

/// Stack `q` per-timestep tensors `[b, d]` into one `[b, q, d]` tensor.
pub fn stack_timesteps(g: &mut Graph, name: &str, xs: &[TensorId]) -> Result<TensorId, GraphError> {
    let shape = g.tensor(xs[0]).shape.clone();
    let (b, d) = (shape.dim(0).clone(), shape.dim(1).clone());
    let expanded: Vec<TensorId> = xs
        .iter()
        .enumerate()
        .map(|(t, &x)| {
            g.reshape(
                &format!("{name}.unsq{t}"),
                x,
                [b.clone(), Expr::one(), d.clone()],
            )
        })
        .collect::<Result<_, _>>()?;
    g.concat(&format!("{name}.stack"), &expanded, 1)
}

/// One Luong-style dot-attention step.
///
/// `query` is the decoder hidden `[b, d]`; `memory` is the stacked encoder
/// output `[b, q_src, d]`. Returns the context vector `[b, d]`:
/// `softmax(query · memoryᵀ) · memory`.
pub fn attention_step(
    g: &mut Graph,
    name: &str,
    query: TensorId,
    memory: TensorId,
) -> Result<TensorId, GraphError> {
    let qshape = g.tensor(query).shape.clone();
    let (b, d) = (qshape.dim(0).clone(), qshape.dim(1).clone());
    let q3 = g.reshape(
        &format!("{name}.q3"),
        query,
        [b.clone(), Expr::one(), d.clone()],
    )?;
    // scores [b, 1, q_src] = q3 · memoryᵀ
    let scores = g.batch_matmul(&format!("{name}.scores"), q3, memory, false, true)?;
    let weights = g.softmax(&format!("{name}.softmax"), scores)?;
    // context [b, 1, d] = weights · memory
    let ctx = g.batch_matmul(&format!("{name}.ctx"), weights, memory, false, false)?;
    g.reshape(&format!("{name}.squeeze"), ctx, [b, d])
}

/// Attentional output: `attn_out = tanh(W_c · [context; hidden])`,
/// returning `[b, out_dim]`. Creates (or reuses) the combiner weight named
/// `{wname}` of shape `[ctx_dim + hidden_dim, out_dim]`.
pub fn attention_combine(
    g: &mut Graph,
    name: &str,
    wname: &str,
    context: TensorId,
    hidden: TensorId,
    out_dim: impl Into<Expr>,
) -> Result<TensorId, GraphError> {
    let cat = g.concat(&format!("{name}.cat"), &[context, hidden], 1)?;
    let w = match g.find(wname) {
        Some(w) => w,
        None => {
            let in_dim = g.tensor(cat).shape.dim(1).clone();
            g.weight(wname, [in_dim, out_dim.into()])?
        }
    };
    let mixed = g.matmul(&format!("{name}.mix"), cat, w, false, false)?;
    g.unary(&format!("{name}.tanh"), PointwiseFn::Tanh, mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::batch;
    use cgraph::{DType, Shape};
    use symath::Bindings;

    #[test]
    fn stack_round_trips_shapes() {
        let mut g = Graph::new("stack");
        let b = batch();
        let xs: Vec<TensorId> = (0..5)
            .map(|t| {
                g.input(format!("x{t}"), [b.clone(), Expr::int(16)], DType::F32)
                    .unwrap()
            })
            .collect();
        let s = stack_timesteps(&mut g, "st", &xs).unwrap();
        assert_eq!(
            g.tensor(s).shape,
            Shape::from([b, Expr::int(5), Expr::int(16)])
        );
    }

    #[test]
    fn attention_step_shapes_and_flops() {
        let mut g = Graph::new("attn");
        let b = batch();
        let (q_src, d) = (7u64, 32u64);
        let query = g
            .input("q", [b.clone(), Expr::from(d)], DType::F32)
            .unwrap();
        let memory = g
            .input(
                "m",
                [b.clone(), Expr::from(q_src), Expr::from(d)],
                DType::F32,
            )
            .unwrap();
        let ctx = attention_step(&mut g, "a", query, memory).unwrap();
        assert_eq!(g.tensor(ctx).shape, Shape::from([b, Expr::from(d)]));
        g.validate().unwrap();
        // FLOPs: scores 2·q·d + softmax 5·q + ctx 2·q·d per sample.
        let flops = g
            .stats()
            .flops
            .eval(&Bindings::new().with("b", 1.0))
            .unwrap();
        let expected = (2 * q_src * d + 5 * q_src + 2 * q_src * d) as f64;
        assert_eq!(flops, expected);
    }

    #[test]
    fn combine_creates_weight_once() {
        let mut g = Graph::new("comb");
        let b = batch();
        let h = g.input("h", [b.clone(), Expr::int(8)], DType::F32).unwrap();
        let c = g.input("c", [b.clone(), Expr::int(8)], DType::F32).unwrap();
        let o1 = attention_combine(&mut g, "s0", "wc", c, h, 8).unwrap();
        let o2 = attention_combine(&mut g, "s1", "wc", c, h, 8).unwrap();
        assert_eq!(g.tensor(o1).shape, g.tensor(o2).shape);
        // Only one combiner weight exists.
        let weights = g
            .tensors()
            .iter()
            .filter(|t| t.kind == cgraph::TensorKind::Weight)
            .count();
        assert_eq!(weights, 1);
        g.validate().unwrap();
    }

    #[test]
    fn attention_backward_builds() {
        let mut g = Graph::new("attn_bwd");
        let b = batch();
        let query = g
            .input("q", [b.clone(), Expr::int(16)], DType::F32)
            .unwrap();
        let w0 = g.weight("w0", [Expr::int(16), Expr::int(16)]).unwrap();
        let query = g.matmul("qproj", query, w0, false, false).unwrap();
        let memw = g.weight("mw", [Expr::int(16), Expr::int(16)]).unwrap();
        let mem0 = g.matmul("mproj", query, memw, false, false).unwrap();
        let mem = stack_timesteps(&mut g, "mem", &[mem0, mem0, mem0]).unwrap();
        let ctx = attention_step(&mut g, "a", query, mem).unwrap();
        let labels = g.input("y", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", ctx, labels).unwrap();
        cgraph::build_training_step(&mut g, loss).unwrap();
        g.validate().unwrap();
    }
}
