//! Speech recognition: pyramidal bi-LSTM encoder with time pooling, LSTM
//! decoder with attention, FC output select (paper Fig 5, after Battenberg
//! et al. 2017).
//!
//! Substitution note (see DESIGN.md): the paper's hybrid attention model has
//! small convolutions inside its attention-context layer; the paper itself
//! notes they are "very small relative to recurrent portions", so they are
//! omitted here and the attention context is pure dot attention.

use cgraph::{DType, Graph};
use serde::{Deserialize, Serialize};
use symath::Expr;

use crate::attention::{attention_combine, attention_step, stack_timesteps};
use crate::common::{batch, Domain, ModelGraph};
use crate::lstm::{bilstm_layer, lstm_layer, split_timesteps};

/// Hyperparameters of the speech model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeechConfig {
    /// Spectrogram feature dimension per frame.
    pub features: u64,
    /// Character vocabulary (decoder output classes).
    pub vocab: u64,
    /// Hidden width `h` per LSTM direction.
    pub hidden: u64,
    /// Encoder bi-LSTM layers (time-pooled ×2 between consecutive layers).
    pub encoder_layers: u64,
    /// Input audio frames (must be divisible by `2^(encoder_layers−1)`).
    pub audio_len: u64,
    /// Decoded character sequence length.
    pub tgt_len: u64,
}

impl Default for SpeechConfig {
    fn default() -> SpeechConfig {
        // ~300 encoder unroll steps per the paper's §2.3/§4.2 note.
        SpeechConfig {
            features: 40,
            vocab: 30,
            hidden: 512,
            encoder_layers: 3,
            audio_len: 300,
            tgt_len: 50,
        }
    }
}

impl SpeechConfig {
    /// Closed-form parameter count mirroring the builder.
    pub fn param_formula(&self) -> u64 {
        let h = self.hidden;
        let lstm = |in_dim: u64| in_dim * 4 * h + h * 4 * h + 4 * h;
        let mut enc = 2 * lstm(self.features); // first bi layer
        for _ in 1..self.encoder_layers {
            enc += 2 * lstm(2 * h);
        }
        let dec_emb = self.vocab * h;
        let dec = lstm(h);
        // Decoder query is projected to the 2h encoder width for dot scores.
        let query_proj = h * 2 * h;
        let combine = (2 * h + h) * h; // W_c [ctx 2h + hidden h, h]
        let out = h * self.vocab + self.vocab;
        enc + dec_emb + dec + query_proj + combine + out
    }

    /// Solve the parameter formula for `hidden` (quadratic).
    pub fn with_target_params(mut self, target: u64) -> SpeechConfig {
        // h² coefficient: first bi layer 8 (input term is linear in h),
        // later bi layers 24 each, decoder 8, query projection 2, combine 3.
        let a = (8 + 24 * (self.encoder_layers - 1) + 8 + 2 + 3) as f64;
        let c1 = (8 * self.features + 2 * self.vocab) as f64;
        let t = target as f64;
        let h = ((c1 * c1 + 4.0 * a * t).sqrt() - c1) / (2.0 * a);
        self.hidden = (h.round() as u64).max(8);
        self
    }
}

/// Build the forward graph for `cfg`.
pub fn build_speech(cfg: &SpeechConfig) -> ModelGraph {
    build_speech_dims(cfg, Expr::from(cfg.hidden))
}

/// Build the forward graph with the hidden width given as an expression
/// (possibly a free symbol). See [`build_word_lm_dims`] for the exactness
/// contract shared by all `_dims` builders.
///
/// [`build_word_lm_dims`]: crate::wordlm::build_word_lm_dims
pub fn build_speech_dims(cfg: &SpeechConfig, h: impl Into<Expr>) -> ModelGraph {
    let h = h.into();
    assert!(
        cfg.audio_len.is_multiple_of(1 << (cfg.encoder_layers - 1)),
        "audio_len must be divisible by 2^(encoder_layers-1)"
    );
    let mut g = Graph::new(format!("speech_h{h}"));
    let b = batch();

    // ---- Encoder ----
    let audio = g
        .input(
            "audio",
            [
                b.clone(),
                Expr::from(cfg.audio_len),
                Expr::from(cfg.features),
            ],
            DType::F32,
        )
        .expect("fresh graph");
    let mut steps = split_timesteps(&mut g, "frames", audio, cfg.audio_len).expect("split");
    let mut in_dim = Expr::from(cfg.features);
    for layer in 0..cfg.encoder_layers {
        let outs = bilstm_layer(
            &mut g,
            &format!("enc.l{layer}"),
            &steps,
            in_dim.clone(),
            h.clone(),
        )
        .expect("bilstm");
        in_dim = Expr::from(2u64) * h.clone();
        if layer + 1 < cfg.encoder_layers {
            // Pyramidal time pooling: stack, halve the time axis, re-split.
            let stacked =
                stack_timesteps(&mut g, &format!("enc.l{layer}.stackpool"), &outs).expect("stack");
            let pooled = g
                .time_pool2(&format!("enc.l{layer}.pool"), stacked)
                .expect("pool");
            let half = outs.len() as u64 / 2;
            steps = split_timesteps(&mut g, &format!("enc.l{layer}.resplit"), pooled, half)
                .expect("split");
        } else {
            steps = outs;
        }
    }
    let memory = stack_timesteps(&mut g, "enc.memory", &steps).expect("stack");

    // ---- Decoder ----
    let tgt = g
        .input(
            "tgt_chars",
            [b.clone(), Expr::from(cfg.tgt_len)],
            DType::I32,
        )
        .expect("input");
    let tgt_table = g
        .weight("tgt_embedding", [Expr::from(cfg.vocab), h.clone()])
        .expect("weight");
    let tgt_emb = g.gather("tgt_embed", tgt_table, tgt).expect("gather");
    let dec_in = split_timesteps(&mut g, "tgt_steps", tgt_emb, cfg.tgt_len).expect("split");
    let dec_h =
        lstm_layer(&mut g, "dec.l0", &dec_in, h.clone(), h.clone(), false).expect("dec lstm");

    // Project decoder queries to the 2h-wide encoder memory.
    let wq = g
        .weight("attn.wq", [h.clone(), Expr::from(2u64) * h.clone()])
        .expect("weight");
    let mut attn_outs = Vec::with_capacity(dec_h.len());
    for (t, &h_t) in dec_h.iter().enumerate() {
        let q = g
            .matmul(&format!("attn.t{t}.qproj"), h_t, wq, false, false)
            .expect("qproj");
        let ctx = attention_step(&mut g, &format!("attn.t{t}"), q, memory).expect("attention");
        let out = attention_combine(
            &mut g,
            &format!("attn.t{t}"),
            "attn.wc",
            ctx,
            h_t,
            h.clone(),
        )
        .expect("combine");
        attn_outs.push(out);
    }

    // ---- Output ----
    let stacked = stack_timesteps(&mut g, "dec.out", &attn_outs).expect("stack");
    let flat = g
        .reshape(
            "flatten",
            stacked,
            [b.clone() * Expr::from(cfg.tgt_len), h.clone()],
        )
        .expect("reshape");
    let wo = g
        .weight("out.w", [h.clone(), Expr::from(cfg.vocab)])
        .expect("w");
    let bo = g.weight("out.b", [Expr::from(cfg.vocab)]).expect("b");
    let logits = g.matmul("out", flat, wo, false, false).expect("matmul");
    let logits = g.bias_add("out_bias", logits, bo).expect("bias");
    let labels = g
        .input("labels", [b * Expr::from(cfg.tgt_len)], DType::I32)
        .expect("labels");
    let loss = g.cross_entropy("loss", logits, labels).expect("loss");

    ModelGraph {
        graph: g,
        loss,
        domain: Domain::Speech,
        is_training: false,
        seq_len: cfg.audio_len + cfg.tgt_len,
        labels_per_sample: cfg.tgt_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SpeechConfig {
        SpeechConfig {
            features: 8,
            vocab: 20,
            hidden: 16,
            encoder_layers: 3,
            audio_len: 16,
            tgt_len: 4,
        }
    }

    #[test]
    fn param_count_matches_closed_form() {
        let cfg = small();
        let m = build_speech(&cfg);
        assert_eq!(m.param_count(), cfg.param_formula());
        m.graph.validate().unwrap();
    }

    #[test]
    fn training_graph_validates() {
        let m = build_speech(&small()).into_training();
        m.graph.validate().unwrap();
    }

    #[test]
    fn pooling_halves_encoder_steps_between_layers() {
        let cfg = small();
        let m = build_speech(&cfg);
        let pools = m
            .graph
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, cgraph::OpKind::Pool { .. }))
            .count();
        assert_eq!(pools, (cfg.encoder_layers - 1) as usize);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_unpoolable_audio_length() {
        let cfg = SpeechConfig {
            audio_len: 6, // not divisible by 4
            ..small()
        };
        let _ = build_speech(&cfg);
    }

    #[test]
    fn with_target_params_inverts_formula() {
        for target in [10_000_000u64, 700_000_000] {
            let cfg = SpeechConfig::default().with_target_params(target);
            let rel = (cfg.param_formula() as f64 - target as f64).abs() / target as f64;
            assert!(rel < 0.05, "target {target}: rel err {rel}");
        }
    }

    #[test]
    fn encoder_dominates_flops() {
        let m = build_speech(&SpeechConfig::default());
        let stats = m.graph.stats();
        let total = stats.flops.eval(&m.bindings_with_batch(1)).unwrap();
        // Rebuild just counting decoder-ish ops is awkward; instead check the
        // output layer is tiny relative to the whole model.
        let out_op = m
            .graph
            .ops()
            .iter()
            .find(|o| o.name == "out")
            .expect("output matmul");
        let out_flops = m
            .graph
            .op_flops(out_op)
            .eval(&m.bindings_with_batch(1))
            .unwrap();
        assert!(out_flops < 0.01 * total);
    }
}
