//! Unified configuration handle and model-size sweeps across the domains.

use crate::charlm::{build_char_lm, CharLmConfig};
use crate::common::{Domain, ModelGraph};
use crate::nmt::{build_nmt, NmtConfig};
use crate::resnet::{build_resnet, ResNetConfig};
use crate::speech::{build_speech, SpeechConfig};
use crate::wordlm::{build_word_lm, WordLmConfig};
use serde::{Deserialize, Serialize};

/// A domain-tagged model configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelConfig {
    /// Word LM hyperparameters.
    WordLm(WordLmConfig),
    /// Character LM hyperparameters.
    CharLm(CharLmConfig),
    /// NMT hyperparameters.
    Nmt(NmtConfig),
    /// Speech hyperparameters.
    Speech(SpeechConfig),
    /// ResNet hyperparameters.
    Resnet(ResNetConfig),
}

impl ModelConfig {
    /// The paper's characterization defaults for `domain`.
    pub fn default_for(domain: Domain) -> ModelConfig {
        match domain {
            Domain::WordLm => ModelConfig::WordLm(WordLmConfig::default()),
            Domain::CharLm => ModelConfig::CharLm(CharLmConfig::default()),
            Domain::Nmt => ModelConfig::Nmt(NmtConfig::default()),
            Domain::Speech => ModelConfig::Speech(SpeechConfig::default()),
            Domain::ImageClassification => ModelConfig::Resnet(ResNetConfig::default()),
        }
    }

    /// The owning domain.
    pub fn domain(&self) -> Domain {
        match self {
            ModelConfig::WordLm(_) => Domain::WordLm,
            ModelConfig::CharLm(_) => Domain::CharLm,
            ModelConfig::Nmt(_) => Domain::Nmt,
            ModelConfig::Speech(_) => Domain::Speech,
            ModelConfig::Resnet(_) => Domain::ImageClassification,
        }
    }

    /// Re-solve the scaling hyperparameter for `target` parameters.
    pub fn with_target_params(self, target: u64) -> ModelConfig {
        match self {
            ModelConfig::WordLm(c) => ModelConfig::WordLm(c.with_target_params(target)),
            ModelConfig::CharLm(c) => ModelConfig::CharLm(c.with_target_params(target)),
            ModelConfig::Nmt(c) => ModelConfig::Nmt(c.with_target_params(target)),
            ModelConfig::Speech(c) => ModelConfig::Speech(c.with_target_params(target)),
            ModelConfig::Resnet(c) => ModelConfig::Resnet(c.with_target_params(target)),
        }
    }

    /// Rebuild the configuration with a different unroll length (the paper
    /// profiles 100–500 steps with per-step sequence-length variation).
    /// For NMT, `q` sets both source and target lengths; for speech it sets
    /// the audio length (rounded up to a poolable multiple); for ResNet it
    /// is a no-op (image models have no unroll).
    pub fn with_seq_len(self, q: u64) -> ModelConfig {
        assert!(q >= 1);
        match self {
            ModelConfig::WordLm(c) => ModelConfig::WordLm(WordLmConfig { seq_len: q, ..c }),
            ModelConfig::CharLm(c) => ModelConfig::CharLm(CharLmConfig { seq_len: q, ..c }),
            ModelConfig::Nmt(c) => ModelConfig::Nmt(NmtConfig {
                src_len: q,
                tgt_len: q,
                ..c
            }),
            ModelConfig::Speech(c) => {
                let granule = 1u64 << (c.encoder_layers - 1);
                let audio = q.div_ceil(granule) * granule;
                ModelConfig::Speech(SpeechConfig {
                    audio_len: audio,
                    ..c
                })
            }
            ModelConfig::Resnet(c) => ModelConfig::Resnet(c),
        }
    }

    /// Closed-form parameter count.
    pub fn param_formula(&self) -> u64 {
        match self {
            ModelConfig::WordLm(c) => c.param_formula(),
            ModelConfig::CharLm(c) => c.param_formula(),
            ModelConfig::Nmt(c) => c.param_formula(),
            ModelConfig::Speech(c) => c.param_formula(),
            ModelConfig::Resnet(c) => c.param_formula(),
        }
    }

    /// Build the forward compute graph.
    pub fn build(&self) -> ModelGraph {
        match self {
            ModelConfig::WordLm(c) => build_word_lm(c),
            ModelConfig::CharLm(c) => build_char_lm(c),
            ModelConfig::Nmt(c) => build_nmt(c),
            ModelConfig::Speech(c) => build_speech(c),
            ModelConfig::Resnet(c) => build_resnet(c),
        }
    }

    /// Build the full training-step graph.
    pub fn build_training(&self) -> ModelGraph {
        self.build().into_training()
    }
}

impl Domain {
    /// The subbatch size the paper profiles this domain with (Table 3).
    pub fn default_subbatch(&self) -> u64 {
        match self {
            Domain::WordLm => 128,
            Domain::CharLm => 96,
            Domain::Nmt => 96,
            Domain::Speech => 128,
            Domain::ImageClassification => 32,
        }
    }
}

/// Log-spaced parameter targets from `lo` to `hi` inclusive.
pub fn log_spaced_targets(lo: u64, hi: u64, n: usize) -> Vec<u64> {
    assert!(n >= 2 && lo >= 1 && hi > lo, "need n≥2 and hi>lo≥1");
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            (llo + f * (lhi - llo)).exp().round() as u64
        })
        .collect()
}

/// A sweep of configurations of `domain` with roughly log-spaced parameter
/// counts in `[lo_params, hi_params]` — the x-axes of Figures 7–10.
pub fn sweep_configs(domain: Domain, lo_params: u64, hi_params: u64, n: usize) -> Vec<ModelConfig> {
    log_spaced_targets(lo_params, hi_params, n)
        .into_iter()
        .map(|t| ModelConfig::default_for(domain).with_target_params(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_spacing_endpoints() {
        let t = log_spaced_targets(1_000, 1_000_000, 4);
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], 1_000);
        assert_eq!(t[3], 1_000_000);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn sweep_produces_increasing_param_counts() {
        for domain in Domain::ALL {
            let sweep = sweep_configs(domain, 10_000_000, 300_000_000, 4);
            let params: Vec<u64> = sweep.iter().map(|c| c.param_formula()).collect();
            assert!(
                params.windows(2).all(|w| w[1] > w[0]),
                "{domain:?}: {params:?}"
            );
            // Each point within 15% of its target.
            let targets = log_spaced_targets(10_000_000, 300_000_000, 4);
            for (p, t) in params.iter().zip(targets.iter()) {
                let rel = (*p as f64 - *t as f64).abs() / *t as f64;
                assert!(rel < 0.15, "{domain:?}: param {p} vs target {t}");
            }
        }
    }

    #[test]
    fn default_configs_build_and_roundtrip_domain() {
        for domain in Domain::ALL {
            let cfg = ModelConfig::default_for(domain);
            assert_eq!(cfg.domain(), domain);
        }
    }
}
