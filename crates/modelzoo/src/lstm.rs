//! LSTM building blocks shared by the word-LM, NMT, and speech models.
//!
//! The cell follows the standard formulation the paper's §4.2 analysis
//! assumes: two `[in,4h]`/`[h,4h]` matmuls per step (`16h²` FLOPs when
//! `in = h`), gate nonlinearities, and elementwise state updates — `8h²`
//! recurrent parameters per layer at `in = h`.

use cgraph::{Graph, GraphError, PointwiseFn, TensorId};
use symath::Expr;

/// Weights of one LSTM layer.
#[derive(Clone, Copy, Debug)]
pub struct LstmWeights {
    /// Input projection `[in_dim, 4h]`.
    pub wx: TensorId,
    /// Recurrent projection `[h, 4h]`.
    pub wh: TensorId,
    /// Gate bias `[4h]`.
    pub bias: TensorId,
}

/// Create the weights for one LSTM layer. Dims are `Into<Expr>` so width can
/// be a concrete `u64` or a free symbol (symbolic model families); constant
/// products like `4·h` fold to the same canonical `Expr` either way.
pub fn lstm_weights(
    g: &mut Graph,
    name: &str,
    in_dim: impl Into<Expr>,
    hidden: impl Into<Expr>,
) -> Result<LstmWeights, GraphError> {
    let in_dim = in_dim.into();
    let hidden = hidden.into();
    let four_h = Expr::from(4u64) * hidden.clone();
    let wx = g.weight(format!("{name}.wx"), [in_dim, four_h.clone()])?;
    let wh = g.weight(format!("{name}.wh"), [hidden, four_h.clone()])?;
    let bias = g.weight(format!("{name}.bias"), [four_h])?;
    Ok(LstmWeights { wx, wh, bias })
}

/// One LSTM step. `state` is `None` at `t = 0` (zero initial state: the
/// recurrent matmul and state blends are skipped, matching a framework that
/// constant-folds zeros).
///
/// Returns `(h_t, c_t)`.
pub fn lstm_cell(
    g: &mut Graph,
    name: &str,
    x: TensorId,
    state: Option<(TensorId, TensorId)>,
    w: &LstmWeights,
) -> Result<(TensorId, TensorId), GraphError> {
    let gx = g.matmul(&format!("{name}.gx"), x, w.wx, false, false)?;
    let gates = match state {
        Some((h_prev, _)) => {
            let gh = g.matmul(&format!("{name}.gh"), h_prev, w.wh, false, false)?;
            g.binary(&format!("{name}.gsum"), PointwiseFn::Add, gx, gh)?
        }
        None => gx,
    };
    let gates = g.bias_add(&format!("{name}.gbias"), gates, w.bias)?;
    let parts = g.split(&format!("{name}.gsplit"), gates, 1, 4)?;
    let i = g.unary(&format!("{name}.i"), PointwiseFn::Sigmoid, parts[0])?;
    let f = g.unary(&format!("{name}.f"), PointwiseFn::Sigmoid, parts[1])?;
    let cc = g.unary(&format!("{name}.cc"), PointwiseFn::Tanh, parts[2])?;
    let o = g.unary(&format!("{name}.o"), PointwiseFn::Sigmoid, parts[3])?;
    let ig = g.binary(&format!("{name}.ig"), PointwiseFn::Mul, i, cc)?;
    let c = match state {
        Some((_, c_prev)) => {
            let fc = g.binary(&format!("{name}.fc"), PointwiseFn::Mul, f, c_prev)?;
            g.binary(&format!("{name}.c"), PointwiseFn::Add, fc, ig)?
        }
        None => {
            // Zero initial cell: c = i⊙ĉ; still run the forget gate through a
            // consumer so its activations participate in backward.
            let _ = f;
            ig
        }
    };
    let ct = g.unary(&format!("{name}.ct"), PointwiseFn::Tanh, c)?;
    let h = g.binary(&format!("{name}.h"), PointwiseFn::Mul, o, ct)?;
    Ok((h, c))
}

/// Unroll one LSTM layer over a sequence of per-timestep inputs `[b, in]`.
/// Returns the hidden state at each timestep.
pub fn lstm_layer(
    g: &mut Graph,
    name: &str,
    xs: &[TensorId],
    in_dim: impl Into<Expr>,
    hidden: impl Into<Expr>,
    reverse: bool,
) -> Result<Vec<TensorId>, GraphError> {
    let w = lstm_weights(g, name, in_dim, hidden)?;
    let mut outputs = vec![None; xs.len()];
    let mut state: Option<(TensorId, TensorId)> = None;
    let order: Vec<usize> = if reverse {
        (0..xs.len()).rev().collect()
    } else {
        (0..xs.len()).collect()
    };
    for t in order {
        let (h, c) = lstm_cell(g, &format!("{name}.t{t}"), xs[t], state, &w)?;
        state = Some((h, c));
        outputs[t] = Some(h);
    }
    Ok(outputs
        .into_iter()
        .map(|o| o.expect("every step ran"))
        .collect())
}

/// A bi-directional LSTM layer: forward and backward passes, concatenated
/// per timestep to `[b, 2h]`.
pub fn bilstm_layer(
    g: &mut Graph,
    name: &str,
    xs: &[TensorId],
    in_dim: impl Into<Expr>,
    hidden: impl Into<Expr>,
) -> Result<Vec<TensorId>, GraphError> {
    let in_dim = in_dim.into();
    let hidden = hidden.into();
    let fwd = lstm_layer(
        g,
        &format!("{name}.fwd"),
        xs,
        in_dim.clone(),
        hidden.clone(),
        false,
    )?;
    let bwd = lstm_layer(g, &format!("{name}.bwd"), xs, in_dim, hidden, true)?;
    let mut out = Vec::with_capacity(xs.len());
    for t in 0..xs.len() {
        out.push(g.concat(&format!("{name}.cat{t}"), &[fwd[t], bwd[t]], 1)?);
    }
    Ok(out)
}

/// Weights of one GRU layer: fused `[in,3h]` / `[h,3h]` projections.
#[derive(Clone, Copy, Debug)]
pub struct GruWeights {
    /// Input projection `[in_dim, 3h]` (update/reset/candidate gates).
    pub wx: TensorId,
    /// Recurrent projection `[h, 3h]`.
    pub wh: TensorId,
    /// Gate bias `[3h]`.
    pub bias: TensorId,
}

/// Create the weights for one GRU layer (`6h²` parameters at `in = h` —
/// 25% fewer than an LSTM layer).
pub fn gru_weights(
    g: &mut Graph,
    name: &str,
    in_dim: impl Into<Expr>,
    hidden: impl Into<Expr>,
) -> Result<GruWeights, GraphError> {
    let in_dim = in_dim.into();
    let hidden = hidden.into();
    let three_h = Expr::from(3u64) * hidden.clone();
    Ok(GruWeights {
        wx: g.weight(format!("{name}.wx"), [in_dim, three_h.clone()])?,
        wh: g.weight(format!("{name}.wh"), [hidden, three_h.clone()])?,
        bias: g.weight(format!("{name}.bias"), [three_h])?,
    })
}

/// One GRU step (Cho et al. 2014 formulation):
/// `z = σ(..)`, `r = σ(..)`, `n = tanh(x·Wn + r ⊙ h·Un)`,
/// `h' = h + z ⊙ (n − h)`. `state = None` at `t = 0` folds the zero state.
pub fn gru_cell(
    g: &mut Graph,
    name: &str,
    x: TensorId,
    state: Option<TensorId>,
    w: &GruWeights,
) -> Result<TensorId, GraphError> {
    let gx = g.matmul(&format!("{name}.gx"), x, w.wx, false, false)?;
    let gx = g.bias_add(&format!("{name}.gbias"), gx, w.bias)?;
    let xparts = g.split(&format!("{name}.gxsplit"), gx, 1, 3)?;
    match state {
        Some(h_prev) => {
            let gh = g.matmul(&format!("{name}.gh"), h_prev, w.wh, false, false)?;
            let hparts = g.split(&format!("{name}.ghsplit"), gh, 1, 3)?;
            let z_pre = g.binary(
                &format!("{name}.zsum"),
                PointwiseFn::Add,
                xparts[0],
                hparts[0],
            )?;
            let r_pre = g.binary(
                &format!("{name}.rsum"),
                PointwiseFn::Add,
                xparts[1],
                hparts[1],
            )?;
            let z = g.unary(&format!("{name}.z"), PointwiseFn::Sigmoid, z_pre)?;
            let r = g.unary(&format!("{name}.r"), PointwiseFn::Sigmoid, r_pre)?;
            let gated = g.binary(&format!("{name}.rn"), PointwiseFn::Mul, r, hparts[2])?;
            let n_pre = g.binary(&format!("{name}.nsum"), PointwiseFn::Add, xparts[2], gated)?;
            let n = g.unary(&format!("{name}.n"), PointwiseFn::Tanh, n_pre)?;
            let diff = g.binary(&format!("{name}.diff"), PointwiseFn::Sub, n, h_prev)?;
            let step = g.binary(&format!("{name}.step"), PointwiseFn::Mul, z, diff)?;
            g.binary(&format!("{name}.h"), PointwiseFn::Add, h_prev, step)
        }
        None => {
            let z = g.unary(&format!("{name}.z"), PointwiseFn::Sigmoid, xparts[0])?;
            let n = g.unary(&format!("{name}.n"), PointwiseFn::Tanh, xparts[2])?;
            let _ = xparts[1]; // reset gate has nothing to reset at t = 0
            g.binary(&format!("{name}.h"), PointwiseFn::Mul, z, n)
        }
    }
}

/// Unroll one GRU layer; returns the hidden state at each timestep.
pub fn gru_layer(
    g: &mut Graph,
    name: &str,
    xs: &[TensorId],
    in_dim: impl Into<Expr>,
    hidden: impl Into<Expr>,
) -> Result<Vec<TensorId>, GraphError> {
    let w = gru_weights(g, name, in_dim, hidden)?;
    let mut state: Option<TensorId> = None;
    let mut out = Vec::with_capacity(xs.len());
    for (t, &x) in xs.iter().enumerate() {
        let h = gru_cell(g, &format!("{name}.t{t}"), x, state, &w)?;
        state = Some(h);
        out.push(h);
    }
    Ok(out)
}

/// Split an embedded sequence `[b, q, e]` into `q` per-timestep tensors
/// `[b, e]`.
pub fn split_timesteps(
    g: &mut Graph,
    name: &str,
    seq: TensorId,
    q: u64,
) -> Result<Vec<TensorId>, GraphError> {
    let shape = g.tensor(seq).shape.clone();
    let b = shape.dim(0).clone();
    let e = shape.dim(2).clone();
    let slices = g.split(name, seq, 1, q)?;
    slices
        .into_iter()
        .enumerate()
        .map(|(t, s)| g.reshape(&format!("{name}.squeeze{t}"), s, [b.clone(), e.clone()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::batch;
    use cgraph::DType;
    use symath::Bindings;

    #[test]
    fn lstm_layer_has_8h2_params() {
        let mut g = Graph::new("lstm");
        let b = batch();
        let h = 32u64;
        let xs: Vec<TensorId> = (0..4)
            .map(|t| {
                g.input(format!("x{t}"), [b.clone(), Expr::from(h)], DType::F32)
                    .unwrap()
            })
            .collect();
        let _ = lstm_layer(&mut g, "l0", &xs, h, h, false).unwrap();
        let params = g.params().eval_u64(&Bindings::new()).unwrap();
        assert_eq!(params, 8 * h * h + 4 * h);
        g.validate().unwrap();
    }

    #[test]
    fn lstm_forward_flops_are_16h2_per_step() {
        // With in = h, matmuls dominate: 2·(h·4h)·2 = 16h² per step per
        // sample, plus small pointwise terms.
        let mut g = Graph::new("lstm_flops");
        let b = batch();
        let h = 64u64;
        let q = 5usize;
        let xs: Vec<TensorId> = (0..q)
            .map(|t| {
                g.input(format!("x{t}"), [b.clone(), Expr::from(h)], DType::F32)
                    .unwrap()
            })
            .collect();
        let _ = lstm_layer(&mut g, "l0", &xs, h, h, false).unwrap();
        let flops = g
            .stats()
            .flops
            .eval(&Bindings::new().with("b", 1.0))
            .unwrap();
        let matmul_flops = (16 * h * h * (q as u64)) as f64 - (8 * h * h) as f64; // t=0 skips Wh
        assert!(
            flops > matmul_flops && flops < matmul_flops * 1.1,
            "flops {flops} vs matmul baseline {matmul_flops}"
        );
    }

    #[test]
    fn bilstm_concat_doubles_width() {
        let mut g = Graph::new("bilstm");
        let b = batch();
        let h = 16u64;
        let xs: Vec<TensorId> = (0..3)
            .map(|t| {
                g.input(format!("x{t}"), [b.clone(), Expr::from(h)], DType::F32)
                    .unwrap()
            })
            .collect();
        let out = bilstm_layer(&mut g, "bi", &xs, h, h).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(g.tensor(out[0]).shape.dim(1), &Expr::from(2 * h));
        g.validate().unwrap();
    }

    #[test]
    fn split_timesteps_produces_rank2_slices() {
        let mut g = Graph::new("split_ts");
        let b = batch();
        let seq = g
            .input("seq", [b.clone(), Expr::int(6), Expr::int(8)], DType::F32)
            .unwrap();
        let steps = split_timesteps(&mut g, "ts", seq, 6).unwrap();
        assert_eq!(steps.len(), 6);
        for &s in &steps {
            assert_eq!(g.tensor(s).shape.rank(), 2);
        }
    }

    #[test]
    fn gru_layer_has_6h2_params() {
        let mut g = Graph::new("gru");
        let b = batch();
        let h = 32u64;
        let xs: Vec<TensorId> = (0..4)
            .map(|t| {
                g.input(format!("x{t}"), [b.clone(), Expr::from(h)], DType::F32)
                    .unwrap()
            })
            .collect();
        let _ = gru_layer(&mut g, "g0", &xs, h, h).unwrap();
        assert_eq!(
            g.params().eval(&Bindings::new()).unwrap(),
            (6 * h * h + 3 * h) as f64
        );
        g.validate().unwrap();
    }

    #[test]
    fn gru_uses_three_quarters_of_lstm_flops() {
        let h = 64u64;
        let q = 6usize;
        let build = |gru: bool| -> f64 {
            let mut g = Graph::new(if gru { "cmp_gru" } else { "cmp_lstm" });
            let b = batch();
            let xs: Vec<TensorId> = (0..q)
                .map(|t| {
                    g.input(format!("x{t}"), [b.clone(), Expr::from(h)], DType::F32)
                        .unwrap()
                })
                .collect();
            if gru {
                gru_layer(&mut g, "l", &xs, h, h).unwrap();
            } else {
                lstm_layer(&mut g, "l", &xs, h, h, false).unwrap();
            }
            g.stats()
                .flops
                .eval(&Bindings::new().with("b", 1.0))
                .unwrap()
        };
        let ratio = build(true) / build(false);
        // Matmul FLOPs scale 6h²/8h² = 0.75; pointwise work nudges it.
        assert!((ratio - 0.75).abs() < 0.07, "GRU/LSTM flops ratio {ratio}");
    }

    #[test]
    fn gru_training_graph_differentiates() {
        let mut g = Graph::new("gru_train");
        let b = batch();
        let h = 16u64;
        let xs: Vec<TensorId> = (0..3)
            .map(|t| {
                g.input(format!("x{t}"), [b.clone(), Expr::from(h)], DType::F32)
                    .unwrap()
            })
            .collect();
        let outs = gru_layer(&mut g, "l", &xs, h, h).unwrap();
        let labels = g.input("y", [b], DType::I32).unwrap();
        let loss = g
            .cross_entropy("loss", *outs.last().unwrap(), labels)
            .unwrap();
        cgraph::build_training_step(&mut g, loss).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn reverse_layer_still_topological() {
        let mut g = Graph::new("rev");
        let b = batch();
        let h = 8u64;
        let xs: Vec<TensorId> = (0..4)
            .map(|t| {
                g.input(format!("x{t}"), [b.clone(), Expr::from(h)], DType::F32)
                    .unwrap()
            })
            .collect();
        let _ = lstm_layer(&mut g, "bwd", &xs, h, h, true).unwrap();
        g.validate().unwrap();
    }
}
