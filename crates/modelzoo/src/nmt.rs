//! Neural machine translation: bi-LSTM encoder, LSTM decoder, dot attention,
//! output selection (paper Fig 4).

use cgraph::{DType, Graph};
use serde::{Deserialize, Serialize};
use symath::Expr;

use crate::attention::{attention_combine, attention_step, stack_timesteps};
use crate::common::{batch, Domain, ModelGraph};
use crate::lstm::{bilstm_layer, lstm_layer, split_timesteps};

/// Hyperparameters of the NMT model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NmtConfig {
    /// Word-piece vocabulary size (shared source/target).
    pub vocab: u64,
    /// Hidden width `h`.
    pub hidden: u64,
    /// Decoder LSTM layers.
    pub decoder_layers: u64,
    /// Source sequence length.
    pub src_len: u64,
    /// Target sequence length.
    pub tgt_len: u64,
}

impl Default for NmtConfig {
    fn default() -> NmtConfig {
        // Word-piece NMT with ~25-step unroll — the Table 2 FLOPs/param
        // asymptote (≈ 6q = 149) pins the effective sequence length near 25.
        NmtConfig {
            vocab: 32_000,
            hidden: 1024,
            decoder_layers: 2,
            src_len: 25,
            tgt_len: 25,
        }
    }
}

impl NmtConfig {
    /// Closed-form parameter count mirroring the builder.
    pub fn param_formula(&self) -> u64 {
        let (v, h) = (self.vocab, self.hidden);
        let lstm = |in_dim: u64| in_dim * 4 * h + h * 4 * h + 4 * h;
        let src_emb = v * h;
        let enc = 2 * lstm(h) /* bi */ + lstm(2 * h);
        let tgt_emb = v * h;
        let dec: u64 = (0..self.decoder_layers).map(|_| lstm(h)).sum();
        let combine = 2 * h * h; // W_c [2h, h]
        let out = h * v + v;
        src_emb + enc + tgt_emb + dec + combine + out
    }

    /// Solve the parameter formula for `hidden` (quadratic).
    pub fn with_target_params(mut self, target: u64) -> NmtConfig {
        // p ≈ (16 + 12 + 8·L_dec + 2)h² + 3v·h (two embeddings + output)
        let a = (16 + 12 + 8 * self.decoder_layers + 2) as f64;
        let c1 = 3.0 * self.vocab as f64;
        let t = target as f64;
        let h = ((c1 * c1 + 4.0 * a * t).sqrt() - c1) / (2.0 * a);
        self.hidden = (h.round() as u64).max(8);
        self
    }
}

/// Build the forward graph for `cfg`.
pub fn build_nmt(cfg: &NmtConfig) -> ModelGraph {
    build_nmt_dims(cfg, Expr::from(cfg.hidden))
}

/// Build the forward graph with the hidden width given as an expression
/// (possibly a free symbol). See [`build_word_lm_dims`] for the exactness
/// contract shared by all `_dims` builders.
///
/// [`build_word_lm_dims`]: crate::wordlm::build_word_lm_dims
pub fn build_nmt_dims(cfg: &NmtConfig, h: impl Into<Expr>) -> ModelGraph {
    let h = h.into();
    let mut g = Graph::new(format!("nmt_h{h}"));
    let b = batch();
    let v = cfg.vocab;

    // ---- Encoder ----
    let src = g
        .input(
            "src_tokens",
            [b.clone(), Expr::from(cfg.src_len)],
            DType::I32,
        )
        .expect("fresh graph");
    let src_table = g
        .weight("src_embedding", [Expr::from(v), h.clone()])
        .expect("weight");
    let src_emb = g.gather("src_embed", src_table, src).expect("gather");
    let src_steps = split_timesteps(&mut g, "src_steps", src_emb, cfg.src_len).expect("split");

    let bi = bilstm_layer(&mut g, "enc.bi", &src_steps, h.clone(), h.clone()).expect("bilstm");
    let enc_top = lstm_layer(
        &mut g,
        "enc.l1",
        &bi,
        Expr::from(2u64) * h.clone(),
        h.clone(),
        false,
    )
    .expect("enc lstm");
    let memory = stack_timesteps(&mut g, "enc.memory", &enc_top).expect("stack");

    // ---- Decoder ----
    let tgt = g
        .input(
            "tgt_tokens",
            [b.clone(), Expr::from(cfg.tgt_len)],
            DType::I32,
        )
        .expect("input");
    let tgt_table = g
        .weight("tgt_embedding", [Expr::from(v), h.clone()])
        .expect("weight");
    let tgt_emb = g.gather("tgt_embed", tgt_table, tgt).expect("gather");
    let mut dec_steps = split_timesteps(&mut g, "tgt_steps", tgt_emb, cfg.tgt_len).expect("split");

    for layer in 0..cfg.decoder_layers {
        dec_steps = lstm_layer(
            &mut g,
            &format!("dec.l{layer}"),
            &dec_steps,
            h.clone(),
            h.clone(),
            false,
        )
        .expect("dec lstm");
    }

    // Per-step attention + combine.
    let mut attn_outs = Vec::with_capacity(dec_steps.len());
    for (t, &h_t) in dec_steps.iter().enumerate() {
        let ctx = attention_step(&mut g, &format!("attn.t{t}"), h_t, memory).expect("attention");
        let out = attention_combine(
            &mut g,
            &format!("attn.t{t}"),
            "attn.wc",
            ctx,
            h_t,
            h.clone(),
        )
        .expect("combine");
        attn_outs.push(out);
    }

    // ---- Output ----
    let stacked = stack_timesteps(&mut g, "dec.out", &attn_outs).expect("stack");
    let flat = g
        .reshape(
            "flatten",
            stacked,
            [b.clone() * Expr::from(cfg.tgt_len), h.clone()],
        )
        .expect("reshape");
    let wo = g.weight("out.w", [h.clone(), Expr::from(v)]).expect("w");
    let bo = g.weight("out.b", [Expr::from(v)]).expect("b");
    let logits = g.matmul("out", flat, wo, false, false).expect("matmul");
    let logits = g.bias_add("out_bias", logits, bo).expect("bias");
    let labels = g
        .input("labels", [b * Expr::from(cfg.tgt_len)], DType::I32)
        .expect("labels");
    let loss = g.cross_entropy("loss", logits, labels).expect("loss");

    ModelGraph {
        graph: g,
        loss,
        domain: Domain::Nmt,
        is_training: false,
        seq_len: cfg.src_len + cfg.tgt_len,
        labels_per_sample: cfg.tgt_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NmtConfig {
        NmtConfig {
            vocab: 500,
            hidden: 32,
            decoder_layers: 2,
            src_len: 5,
            tgt_len: 4,
        }
    }

    #[test]
    fn param_count_matches_closed_form() {
        let cfg = small();
        let m = build_nmt(&cfg);
        assert_eq!(m.param_count(), cfg.param_formula());
        m.graph.validate().unwrap();
    }

    #[test]
    fn training_graph_validates() {
        let m = build_nmt(&small()).into_training();
        m.graph.validate().unwrap();
    }

    #[test]
    fn attention_ops_present_per_decoder_step() {
        let cfg = small();
        let m = build_nmt(&cfg);
        let softmaxes = m
            .graph
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, cgraph::OpKind::Softmax))
            .count();
        assert_eq!(softmaxes, cfg.tgt_len as usize);
    }

    #[test]
    fn with_target_params_inverts_formula() {
        for target in [5_000_000u64, 80_000_000] {
            let cfg = NmtConfig::default().with_target_params(target);
            let rel = (cfg.param_formula() as f64 - target as f64).abs() / target as f64;
            assert!(rel < 0.05, "target {target}: rel err {rel}");
        }
    }

    #[test]
    fn flops_are_affine_in_batch() {
        // Activation math scales with b; weight updates and weight-gradient
        // accumulation do not, so step FLOPs are A·b + C (paper: "batched
        // training roughly multiplies these values by the subbatch size").
        let m = build_nmt(&small()).into_training();
        let s = m.graph.stats();
        let f1 = s.flops.eval(&m.bindings_with_batch(1)).unwrap();
        let f2 = s.flops.eval(&m.bindings_with_batch(2)).unwrap();
        let f8 = s.flops.eval(&m.bindings_with_batch(8)).unwrap();
        let predicted = f1 + 7.0 * (f2 - f1);
        assert!((f8 - predicted).abs() < 1e-6 * f8, "{f8} vs {predicted}");
    }
}
