//! Character language model: recurrent highway network (paper Fig 3).
//!
//! Follows Zilly et al. (ICML 2017): one deep RHN "layer" whose recurrence
//! depth `d` stacks highway sublayers per timestep. The first sublayer mixes
//! the embedded input and the recurrent state (`4h²` parameters); deeper
//! sublayers transform the state only (`2h²` each), so the recurrent
//! parameter count is `2h²(d+1)` and every timestep touches all of it —
//! giving the `6q` FLOPs/param asymptote of Table 2 at `q = 150`.

use cgraph::{DType, Graph, GraphError, PointwiseFn, TensorId};
use serde::{Deserialize, Serialize};
use symath::Expr;

use crate::common::{batch, Domain, ModelGraph};
use crate::lstm::split_timesteps;

/// Hyperparameters of the character LM.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CharLmConfig {
    /// Character vocabulary size (small: printable ASCII-ish).
    pub vocab: u64,
    /// Hidden width `h`.
    pub hidden: u64,
    /// Recurrence depth `d` (highway sublayers per timestep).
    pub depth: u64,
    /// Unrolled sequence length `q`.
    pub seq_len: u64,
}

impl Default for CharLmConfig {
    fn default() -> CharLmConfig {
        CharLmConfig {
            vocab: 98,
            hidden: 830, // Zilly et al.'s best depth-10 RHN width
            depth: 10,
            seq_len: 150,
        }
    }
}

impl CharLmConfig {
    /// Closed-form parameter count: embedding + recurrent + output + biases.
    pub fn param_formula(&self) -> u64 {
        let (v, h, d) = (self.vocab, self.hidden, self.depth);
        v * h + 2 * h * h * (d + 1) + 2 * h * d + h * v + v
    }

    /// Solve the parameter formula for `hidden` (quadratic).
    pub fn with_target_params(mut self, target: u64) -> CharLmConfig {
        let (v, d) = (self.vocab as f64, self.depth as f64);
        let a = 2.0 * (d + 1.0);
        let c1 = 2.0 * v + 2.0 * d;
        let t = target as f64;
        let h = ((c1 * c1 + 4.0 * a * t).sqrt() - c1) / (2.0 * a);
        self.hidden = (h.round() as u64).max(8);
        self
    }
}

/// Weights of one highway sublayer.
struct RhnSublayer {
    wx_h: Option<TensorId>,
    wx_t: Option<TensorId>,
    r_h: TensorId,
    r_t: TensorId,
    b_h: TensorId,
    b_t: TensorId,
}

fn rhn_sublayer_weights(
    g: &mut Graph,
    name: &str,
    hidden: Expr,
    with_input: bool,
) -> Result<RhnSublayer, GraphError> {
    let h = hidden;
    let make =
        |g: &mut Graph, suffix: &str| g.weight(format!("{name}.{suffix}"), [h.clone(), h.clone()]);
    let (wx_h, wx_t) = if with_input {
        (Some(make(g, "wx_h")?), Some(make(g, "wx_t")?))
    } else {
        (None, None)
    };
    Ok(RhnSublayer {
        wx_h,
        wx_t,
        r_h: make(g, "r_h")?,
        r_t: make(g, "r_t")?,
        b_h: g.weight(format!("{name}.b_h"), [h.clone()])?,
        b_t: g.weight(format!("{name}.b_t"), [h])?,
    })
}

/// One highway sublayer update: `s' = s + T ⊙ (H − s)` (with `s' = H ⊙ T`
/// when there is no incoming state at `t = 0`, matching zero-state folding).
fn rhn_sublayer(
    g: &mut Graph,
    name: &str,
    x: Option<TensorId>,
    s: Option<TensorId>,
    w: &RhnSublayer,
) -> Result<TensorId, GraphError> {
    let mut h_pre: Option<TensorId> = None;
    let mut t_pre: Option<TensorId> = None;
    if let Some(x) = x {
        h_pre = Some(g.matmul(
            &format!("{name}.xh"),
            x,
            w.wx_h.expect("input weights"),
            false,
            false,
        )?);
        t_pre = Some(g.matmul(
            &format!("{name}.xt"),
            x,
            w.wx_t.expect("input weights"),
            false,
            false,
        )?);
    }
    if let Some(s) = s {
        let sh = g.matmul(&format!("{name}.sh"), s, w.r_h, false, false)?;
        let st = g.matmul(&format!("{name}.st"), s, w.r_t, false, false)?;
        h_pre = Some(match h_pre {
            Some(p) => g.binary(&format!("{name}.hsum"), PointwiseFn::Add, p, sh)?,
            None => sh,
        });
        t_pre = Some(match t_pre {
            Some(p) => g.binary(&format!("{name}.tsum"), PointwiseFn::Add, p, st)?,
            None => st,
        });
    }
    let h_pre = h_pre.expect("sublayer needs x or s");
    let t_pre = t_pre.expect("sublayer needs x or s");
    let h_pre = g.bias_add(&format!("{name}.hb"), h_pre, w.b_h)?;
    let t_pre = g.bias_add(&format!("{name}.tb"), t_pre, w.b_t)?;
    let hh = g.unary(&format!("{name}.H"), PointwiseFn::Tanh, h_pre)?;
    let tt = g.unary(&format!("{name}.T"), PointwiseFn::Sigmoid, t_pre)?;
    match s {
        Some(s) => {
            let diff = g.binary(&format!("{name}.diff"), PointwiseFn::Sub, hh, s)?;
            let gated = g.binary(&format!("{name}.gate"), PointwiseFn::Mul, tt, diff)?;
            g.binary(&format!("{name}.out"), PointwiseFn::Add, s, gated)
        }
        None => g.binary(&format!("{name}.out"), PointwiseFn::Mul, hh, tt),
    }
}

/// Build the forward graph for `cfg`.
pub fn build_char_lm(cfg: &CharLmConfig) -> ModelGraph {
    build_char_lm_dims(cfg, Expr::from(cfg.hidden))
}

/// Build the forward graph with the hidden width given as an expression
/// (possibly a free symbol). See [`build_word_lm_dims`] for the exactness
/// contract shared by all `_dims` builders.
///
/// [`build_word_lm_dims`]: crate::wordlm::build_word_lm_dims
pub fn build_char_lm_dims(cfg: &CharLmConfig, h: impl Into<Expr>) -> ModelGraph {
    let h = h.into();
    let mut g = Graph::new(format!("charlm_h{h}"));
    let b = batch();
    let (v, q, d) = (cfg.vocab, cfg.seq_len, cfg.depth);

    let chars = g
        .input("chars", [b.clone(), Expr::from(q)], DType::I32)
        .expect("fresh graph");
    let table = g
        .weight("embedding", [Expr::from(v), h.clone()])
        .expect("fresh graph");
    let embedded = g.gather("embed", table, chars).expect("gather");
    let xs = split_timesteps(&mut g, "steps", embedded, q).expect("split");

    // Shared sublayer weights across timesteps (recurrent reuse).
    let sublayers: Vec<RhnSublayer> = (0..d)
        .map(|s| {
            rhn_sublayer_weights(&mut g, &format!("rhn{s}"), h.clone(), s == 0).expect("weights")
        })
        .collect();

    let mut state: Option<TensorId> = None;
    let mut outputs = Vec::with_capacity(q as usize);
    for (t, &x) in xs.iter().enumerate() {
        let mut s = state;
        for (si, w) in sublayers.iter().enumerate() {
            let x_in = if si == 0 { Some(x) } else { None };
            s = Some(rhn_sublayer(&mut g, &format!("t{t}.s{si}"), x_in, s, w).expect("sublayer"));
        }
        state = s;
        outputs.push(state.expect("depth ≥ 1"));
    }

    let stacked: Vec<TensorId> = outputs
        .iter()
        .enumerate()
        .map(|(t, &x)| {
            g.reshape(&format!("unsq{t}"), x, [b.clone(), Expr::one(), h.clone()])
                .expect("reshape")
        })
        .collect();
    let seq = g.concat("restack", &stacked, 1).expect("concat");
    let flat = g
        .reshape("flatten", seq, [b.clone() * Expr::from(q), h.clone()])
        .expect("reshape");

    let wo = g.weight("out.w", [h.clone(), Expr::from(v)]).expect("w");
    let bo = g.weight("out.b", [Expr::from(v)]).expect("b");
    let logits = g.matmul("out", flat, wo, false, false).expect("matmul");
    let logits = g.bias_add("out_bias", logits, bo).expect("bias");
    let labels = g
        .input("labels", [b * Expr::from(q)], DType::I32)
        .expect("labels");
    let loss = g.cross_entropy("loss", logits, labels).expect("loss");

    ModelGraph {
        graph: g,
        loss,
        domain: Domain::CharLm,
        is_training: false,
        seq_len: q,
        labels_per_sample: q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CharLmConfig {
        CharLmConfig {
            vocab: 50,
            hidden: 32,
            depth: 3,
            seq_len: 6,
        }
    }

    #[test]
    fn param_count_matches_closed_form() {
        let cfg = small();
        let m = build_char_lm(&cfg);
        assert_eq!(m.param_count(), cfg.param_formula());
        m.graph.validate().unwrap();
    }

    #[test]
    fn training_graph_validates() {
        let m = build_char_lm(&small()).into_training();
        m.graph.validate().unwrap();
    }

    #[test]
    fn flops_per_param_approaches_6q() {
        let cfg = CharLmConfig {
            vocab: 50,
            hidden: 256,
            depth: 4,
            seq_len: 8,
        };
        let m = build_char_lm(&cfg).into_training();
        let n = m.graph.stats().eval(&m.bindings_with_batch(1)).unwrap();
        let ratio = n.flops / n.params;
        let asymptote = 6.0 * cfg.seq_len as f64;
        assert!(
            ratio > 0.6 * asymptote && ratio < 1.2 * asymptote,
            "flops/param {ratio} vs 6q = {asymptote}"
        );
    }

    #[test]
    fn with_target_params_inverts_formula() {
        for target in [1_000_000u64, 50_000_000] {
            let cfg = CharLmConfig::default().with_target_params(target);
            let rel = (cfg.param_formula() as f64 - target as f64).abs() / target as f64;
            assert!(rel < 0.05, "target {target}: rel err {rel}");
        }
    }

    #[test]
    fn deeper_rhn_has_more_params_same_flop_ratio() {
        let shallow = CharLmConfig {
            depth: 2,
            ..small()
        };
        let deep = CharLmConfig {
            depth: 6,
            ..small()
        };
        let ps = build_char_lm(&shallow).param_count();
        let pd = build_char_lm(&deep).param_count();
        assert!(pd > ps);
    }
}
