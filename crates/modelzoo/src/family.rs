//! Width-symbolic model families for the symbolic sweep engine.
//!
//! A Figure 7–10 sweep varies exactly one hyperparameter per domain — the
//! recurrent hidden width or the ResNet stem width — while the *structure*
//! (layer counts, unroll length, vocabulary) stays fixed. All graphs in such
//! a sweep are therefore instances of one **family**: the graph built with
//! the width left as a free symbol ([`WIDTH_SYM`]).
//!
//! Exactness contract: the builders combine width dimensions only with ring
//! operations (`+`, `×`), and [`symath::Expr`] keeps sums-of-terms in a
//! canonical form with exact rational coefficients. Substituting the integer
//! width back into a family expression (`Expr::bind_all`) therefore yields
//! the *identical* canonical expression the concrete builder produces — so
//! every downstream `eval` is bit-identical, not merely close.

use symath::{Bindings, ExprId};

use crate::common::ModelGraph;
use crate::sweep::ModelConfig;

/// The free symbol standing in for the swept width hyperparameter (`hidden`
/// for recurrent models, `width` for ResNet).
pub const WIDTH_SYM: &str = "fam_h";

/// The free symbol for the word-LM projection width (only present when the
/// configuration enables a projection; its concrete value is derived from
/// `hidden`, so it sweeps alongside [`WIDTH_SYM`]).
pub const PROJ_SYM: &str = "fam_p";

impl ModelConfig {
    /// The family this configuration belongs to: its structure with the
    /// swept width(s) erased. Two configurations with equal keys build
    /// graphs that differ only in the values bound to [`WIDTH_SYM`] /
    /// [`PROJ_SYM`] — i.e. [`build_family`](ModelConfig::build_family)
    /// returns the same graph for both.
    pub fn family_key(&self) -> String {
        match self {
            ModelConfig::WordLm(c) => format!(
                "wordlm;v={};l={};q={};proj={};tied={}",
                c.vocab,
                c.layers,
                c.seq_len,
                c.projection.is_some(),
                c.tied_embedding
            ),
            ModelConfig::CharLm(c) => {
                format!("charlm;v={};d={};q={}", c.vocab, c.depth, c.seq_len)
            }
            ModelConfig::Nmt(c) => format!(
                "nmt;v={};l={};qs={};qt={}",
                c.vocab, c.decoder_layers, c.src_len, c.tgt_len
            ),
            ModelConfig::Speech(c) => format!(
                "speech;f={};v={};l={};qa={};qt={}",
                c.features, c.vocab, c.encoder_layers, c.audio_len, c.tgt_len
            ),
            ModelConfig::Resnet(c) => format!(
                "resnet{};img={};cls={}",
                c.depth.layers(),
                c.image,
                c.classes
            ),
        }
    }

    /// The integer values of this configuration's swept width symbols.
    /// Binding these into a family graph's expressions (`Expr::bind_all`)
    /// recovers the concrete model exactly.
    pub fn family_widths(&self) -> Bindings {
        match self {
            ModelConfig::WordLm(c) => {
                let mut b = Bindings::new().with(WIDTH_SYM, c.hidden as f64);
                if let Some(p) = c.projection {
                    b.set(PROJ_SYM, p as f64);
                }
                b
            }
            ModelConfig::CharLm(c) => Bindings::new().with(WIDTH_SYM, c.hidden as f64),
            ModelConfig::Nmt(c) => Bindings::new().with(WIDTH_SYM, c.hidden as f64),
            ModelConfig::Speech(c) => Bindings::new().with(WIDTH_SYM, c.hidden as f64),
            ModelConfig::Resnet(c) => Bindings::new().with(WIDTH_SYM, c.width as f64),
        }
    }

    /// Build the forward graph with the swept width(s) as free symbols.
    pub fn build_family(&self) -> ModelGraph {
        // Hash-cons the swept width once; the builders take it through the
        // thin `Expr` view (`From<ExprId>`), so every family rebuild starts
        // from the same interned symbol.
        let h = ExprId::sym(WIDTH_SYM);
        match self {
            ModelConfig::WordLm(c) => {
                let p = c.projection.map(|_| ExprId::sym(PROJ_SYM).into());
                crate::wordlm::build_word_lm_dims(c, h, p)
            }
            ModelConfig::CharLm(c) => crate::charlm::build_char_lm_dims(c, h),
            ModelConfig::Nmt(c) => crate::nmt::build_nmt_dims(c, h),
            ModelConfig::Speech(c) => crate::speech::build_speech_dims(c, h),
            ModelConfig::Resnet(c) => crate::resnet::build_resnet_dims(c, h),
        }
    }

    /// Build the full width-symbolic training-step graph.
    pub fn build_family_training(&self) -> ModelGraph {
        self.build_family().into_training()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Domain;
    use crate::wordlm::WordLmConfig;
    use cgraph::GraphStats;

    fn small(domain: Domain) -> ModelConfig {
        // Down-scaled structures so training graphs build fast.
        match domain {
            Domain::WordLm => ModelConfig::WordLm(WordLmConfig {
                vocab: 500,
                hidden: 48,
                layers: 2,
                seq_len: 5,
                projection: None,
                tied_embedding: true,
            }),
            Domain::CharLm => ModelConfig::CharLm(crate::CharLmConfig {
                vocab: 60,
                hidden: 40,
                depth: 3,
                seq_len: 4,
            }),
            Domain::Nmt => ModelConfig::Nmt(crate::NmtConfig {
                vocab: 400,
                hidden: 32,
                decoder_layers: 2,
                src_len: 4,
                tgt_len: 3,
            }),
            Domain::Speech => ModelConfig::Speech(crate::SpeechConfig {
                features: 8,
                vocab: 20,
                hidden: 24,
                encoder_layers: 2,
                audio_len: 8,
                tgt_len: 3,
            }),
            Domain::ImageClassification => ModelConfig::Resnet(crate::ResNetConfig {
                depth: crate::ResNetDepth::D18,
                width: 16,
                image: 32,
                classes: 10,
            }),
        }
    }

    fn assert_stats_identical(family: &GraphStats, widths: &Bindings, concrete: &GraphStats) {
        let pairs = [
            (&family.flops, &concrete.flops, "flops"),
            (&family.flops_forward, &concrete.flops_forward, "fwd"),
            (&family.flops_backward, &concrete.flops_backward, "bwd"),
            (&family.flops_update, &concrete.flops_update, "upd"),
            (&family.bytes, &concrete.bytes, "bytes"),
            (&family.bytes_read, &concrete.bytes_read, "read"),
            (&family.bytes_written, &concrete.bytes_written, "written"),
            (&family.params, &concrete.params, "params"),
            (&family.io, &concrete.io, "io"),
        ];
        for (fam, conc, what) in pairs {
            assert_eq!(&fam.bind_all(widths), conc, "{what} exprs diverge");
        }
    }

    #[test]
    fn family_substitution_reproduces_concrete_stats_all_domains() {
        for domain in Domain::ALL {
            let cfg = small(domain);
            let fam = cfg.build_family_training();
            let conc = cfg.build_training();
            assert_stats_identical(
                &fam.graph.stats(),
                &cfg.family_widths(),
                &conc.graph.stats(),
            );
        }
    }

    #[test]
    fn family_substitution_reproduces_concrete_tensor_sizes() {
        for domain in Domain::ALL {
            let cfg = small(domain);
            let fam = cfg.build_family_training();
            let conc = cfg.build_training();
            let widths = cfg.family_widths();
            let batch = conc.bindings_with_batch(7);
            assert_eq!(fam.graph.tensors().len(), conc.graph.tensors().len());
            for (ft, ct) in fam.graph.tensors().iter().zip(conc.graph.tensors()) {
                let fam_elems = ft.shape.elements().bind_all(&widths);
                assert_eq!(fam_elems, ct.shape.elements(), "{}: elements", ct.name);
                assert_eq!(
                    fam_elems.eval_u64(&batch).unwrap() * ft.dtype.size_bytes(),
                    ct.bytes_u64(&batch).unwrap(),
                    "{}: bytes",
                    ct.name
                );
            }
        }
    }

    #[test]
    fn family_key_erases_width_only() {
        for domain in Domain::ALL {
            let a = ModelConfig::default_for(domain).with_target_params(10_000_000);
            let b = ModelConfig::default_for(domain).with_target_params(200_000_000);
            assert_eq!(a.family_key(), b.family_key(), "{domain:?}");
            assert_ne!(
                a.family_widths().get(symath::Symbol::new(WIDTH_SYM)),
                b.family_widths().get(symath::Symbol::new(WIDTH_SYM)),
                "{domain:?}"
            );
        }
        let short = ModelConfig::default_for(Domain::WordLm).with_seq_len(10);
        let long = ModelConfig::default_for(Domain::WordLm).with_seq_len(20);
        assert_ne!(short.family_key(), long.family_key());
    }

    #[test]
    fn wordlm_projection_sweeps_as_second_symbol() {
        let cfg = ModelConfig::WordLm(WordLmConfig {
            projection: Some(8),
            tied_embedding: false,
            vocab: 500,
            hidden: 64,
            layers: 1,
            seq_len: 4,
        });
        let fam = cfg.build_family_training();
        let conc = cfg.build_training();
        assert_stats_identical(
            &fam.graph.stats(),
            &cfg.family_widths(),
            &conc.graph.stats(),
        );
    }
}
