//! Image classification: ResNet with basic and bottleneck residual blocks
//! (paper Fig 1, after He et al. 2016).
//!
//! Models scale the way the paper scales them (§4.1): by depth (more blocks
//! per residual group) and by width (more convolution channels), not by
//! filter size.

use cgraph::{DType, Graph, GraphError, PointwiseFn, PoolKind, TensorId};
use serde::{Deserialize, Serialize};
use symath::Expr;

use crate::common::{batch, Domain, ModelGraph};

/// Standard ResNet depths.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ResNetDepth {
    /// 18 layers (basic blocks).
    D18,
    /// 34 layers (basic blocks).
    D34,
    /// 50 layers (bottleneck blocks).
    D50,
    /// 101 layers (bottleneck blocks).
    D101,
    /// 152 layers (bottleneck blocks).
    D152,
}

impl ResNetDepth {
    /// Blocks per residual group.
    pub fn blocks(&self) -> [u64; 4] {
        match self {
            ResNetDepth::D18 => [2, 2, 2, 2],
            ResNetDepth::D34 => [3, 4, 6, 3],
            ResNetDepth::D50 => [3, 4, 6, 3],
            ResNetDepth::D101 => [3, 4, 23, 3],
            ResNetDepth::D152 => [3, 8, 36, 3],
        }
    }

    /// Whether groups use bottleneck (1×1–3×3–1×1) blocks.
    pub fn bottleneck(&self) -> bool {
        matches!(
            self,
            ResNetDepth::D50 | ResNetDepth::D101 | ResNetDepth::D152
        )
    }

    /// Numeric depth label.
    pub fn layers(&self) -> u64 {
        match self {
            ResNetDepth::D18 => 18,
            ResNetDepth::D34 => 34,
            ResNetDepth::D50 => 50,
            ResNetDepth::D101 => 101,
            ResNetDepth::D152 => 152,
        }
    }
}

/// Hyperparameters of the ResNet classifier.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Depth variant.
    pub depth: ResNetDepth,
    /// Stem width (64 in standard ResNets); residual groups use
    /// `width·{1,2,4,8}`.
    pub width: u64,
    /// Square input image edge.
    pub image: u64,
    /// Output classes.
    pub classes: u64,
}

impl Default for ResNetConfig {
    fn default() -> ResNetConfig {
        ResNetConfig {
            depth: ResNetDepth::D50,
            width: 64,
            image: 224,
            classes: 1000,
        }
    }
}

/// One convolution in the statically enumerated layer plan, generic over the
/// channel-count representation: `u64` for the closed-form parameter count,
/// [`Expr`] for the graph builder (where the width may be a free symbol).
#[derive(Clone, Debug)]
struct ConvSpec<C> {
    cin: C,
    cout: C,
    k: u64,
    stride: u64,
    pad: u64,
    /// Followed by batch norm.
    bn: bool,
}

/// Enumerate every convolution the builder will create, in order. Shared by
/// the parameter formula and (indirectly) the tests so the two cannot drift.
fn conv_plan(cfg: &ResNetConfig) -> Vec<ConvSpec<u64>> {
    let w = cfg.width;
    let mut plan = vec![ConvSpec {
        cin: 3,
        cout: w,
        k: 7,
        stride: 2,
        pad: 3,
        bn: true,
    }];
    let expansion = if cfg.depth.bottleneck() { 4 } else { 1 };
    let mut cin = w;
    for (gi, &nblocks) in cfg.depth.blocks().iter().enumerate() {
        let cmid = w << gi;
        let cout = cmid * expansion;
        for bi in 0..nblocks {
            let stride = if gi > 0 && bi == 0 { 2 } else { 1 };
            if cfg.depth.bottleneck() {
                plan.push(ConvSpec {
                    cin,
                    cout: cmid,
                    k: 1,
                    stride: 1,
                    pad: 0,
                    bn: true,
                });
                plan.push(ConvSpec {
                    cin: cmid,
                    cout: cmid,
                    k: 3,
                    stride,
                    pad: 1,
                    bn: true,
                });
                plan.push(ConvSpec {
                    cin: cmid,
                    cout,
                    k: 1,
                    stride: 1,
                    pad: 0,
                    bn: true,
                });
            } else {
                plan.push(ConvSpec {
                    cin,
                    cout,
                    k: 3,
                    stride,
                    pad: 1,
                    bn: true,
                });
                plan.push(ConvSpec {
                    cin: cout,
                    cout,
                    k: 3,
                    stride: 1,
                    pad: 1,
                    bn: true,
                });
            }
            if bi == 0 && (stride != 1 || cin != cout) {
                // Projection shortcut.
                plan.push(ConvSpec {
                    cin,
                    cout,
                    k: 1,
                    stride,
                    pad: 0,
                    bn: true,
                });
            }
            cin = cout;
        }
    }
    plan
}

impl ResNetConfig {
    /// Closed-form parameter count (convs + batch norms + classifier).
    pub fn param_formula(&self) -> u64 {
        let convs: u64 = conv_plan(self)
            .iter()
            .map(|c| c.cout * c.cin * c.k * c.k + if c.bn { 2 * c.cout } else { 0 })
            .sum();
        let cfinal = self.final_channels();
        convs + cfinal * self.classes + self.classes
    }

    /// Channels entering the classifier head.
    pub fn final_channels(&self) -> u64 {
        let expansion = if self.depth.bottleneck() { 4 } else { 1 };
        (self.width << 3) * expansion
    }

    /// Scale `width` so the parameter count approximates `target`
    /// (binary search; convolution parameters grow quadratically in width).
    pub fn with_target_params(mut self, target: u64) -> ResNetConfig {
        let (mut lo, mut hi) = (8u64, 8192u64);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let p = ResNetConfig { width: mid, ..self }.param_formula();
            if p < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Pick the closer of the two bracketing widths.
        let above = ResNetConfig { width: lo, ..self }.param_formula();
        let below = ResNetConfig {
            width: lo.saturating_sub(1).max(8),
            ..self
        }
        .param_formula();
        self.width = if target.abs_diff(below) < target.abs_diff(above) {
            lo.saturating_sub(1).max(8)
        } else {
            lo
        };
        self
    }
}

fn conv_bn_relu(
    g: &mut Graph,
    name: &str,
    x: TensorId,
    spec: &ConvSpec<Expr>,
    relu: bool,
) -> Result<TensorId, GraphError> {
    let w = g.weight(
        format!("{name}.w"),
        [
            spec.cout.clone(),
            spec.cin.clone(),
            Expr::from(spec.k),
            Expr::from(spec.k),
        ],
    )?;
    let mut y = g.conv2d(name, x, w, spec.stride, spec.pad)?;
    if spec.bn {
        let gamma = g.weight(format!("{name}.bn"), [Expr::from(2u64) * spec.cout.clone()])?;
        y = g.batch_norm(&format!("{name}.bn_op"), y, gamma)?;
    }
    if relu {
        y = g.unary(&format!("{name}.relu"), PointwiseFn::Relu, y)?;
    }
    Ok(y)
}

/// Build the forward graph for `cfg`.
pub fn build_resnet(cfg: &ResNetConfig) -> ModelGraph {
    build_resnet_dims(cfg, Expr::from(cfg.width))
}

/// Build the forward graph with the stem width given as an expression
/// (possibly a free symbol). Channel counts are `width` times a constant
/// (`w·2^gi`, `·expansion`), so the `u64` shifts of [`conv_plan`] map onto
/// exact ring products here; see [`build_word_lm_dims`] for the shared
/// exactness contract.
///
/// [`build_word_lm_dims`]: crate::wordlm::build_word_lm_dims
pub fn build_resnet_dims(cfg: &ResNetConfig, w: impl Into<Expr>) -> ModelGraph {
    let w = w.into();
    let mut g = Graph::new(format!("resnet{}_w{w}", cfg.depth.layers()));
    let b = batch();

    let image = g
        .input(
            "image",
            [
                b.clone(),
                Expr::int(3),
                Expr::from(cfg.image),
                Expr::from(cfg.image),
            ],
            DType::F32,
        )
        .expect("fresh graph");

    let stem_spec = ConvSpec {
        cin: Expr::int(3),
        cout: w.clone(),
        k: 7,
        stride: 2,
        pad: 3,
        bn: true,
    };
    let mut x = conv_bn_relu(&mut g, "stem", image, &stem_spec, true).expect("stem");
    x = g
        .pool("stem.pool", PoolKind::Max, x, 3, 2, 1)
        .expect("pool");

    let expansion = if cfg.depth.bottleneck() { 4u64 } else { 1 };
    let mut cin = w.clone();
    for (gi, &nblocks) in cfg.depth.blocks().iter().enumerate() {
        let cmid = w.clone() * Expr::from(1u64 << gi);
        let cout = cmid.clone() * Expr::from(expansion);
        for bi in 0..nblocks {
            let stride = if gi > 0 && bi == 0 { 2 } else { 1 };
            let prefix = format!("g{gi}.b{bi}");
            // Channel exprs are `constant·w`, so structural equality here
            // decides exactly as the `u64` comparison in `conv_plan` does.
            let shortcut = if bi == 0 && (stride != 1 || cin != cout) {
                let spec = ConvSpec {
                    cin: cin.clone(),
                    cout: cout.clone(),
                    k: 1,
                    stride,
                    pad: 0,
                    bn: true,
                };
                conv_bn_relu(&mut g, &format!("{prefix}.proj"), x, &spec, false).expect("proj")
            } else {
                x
            };
            let body = if cfg.depth.bottleneck() {
                let s1 = ConvSpec {
                    cin: cin.clone(),
                    cout: cmid.clone(),
                    k: 1,
                    stride: 1,
                    pad: 0,
                    bn: true,
                };
                let s2 = ConvSpec {
                    cin: cmid.clone(),
                    cout: cmid.clone(),
                    k: 3,
                    stride,
                    pad: 1,
                    bn: true,
                };
                let s3 = ConvSpec {
                    cin: cmid.clone(),
                    cout: cout.clone(),
                    k: 1,
                    stride: 1,
                    pad: 0,
                    bn: true,
                };
                let y = conv_bn_relu(&mut g, &format!("{prefix}.c1"), x, &s1, true).expect("c1");
                let y = conv_bn_relu(&mut g, &format!("{prefix}.c2"), y, &s2, true).expect("c2");
                conv_bn_relu(&mut g, &format!("{prefix}.c3"), y, &s3, false).expect("c3")
            } else {
                let s1 = ConvSpec {
                    cin: cin.clone(),
                    cout: cout.clone(),
                    k: 3,
                    stride,
                    pad: 1,
                    bn: true,
                };
                let s2 = ConvSpec {
                    cin: cout.clone(),
                    cout: cout.clone(),
                    k: 3,
                    stride: 1,
                    pad: 1,
                    bn: true,
                };
                let y = conv_bn_relu(&mut g, &format!("{prefix}.c1"), x, &s1, true).expect("c1");
                conv_bn_relu(&mut g, &format!("{prefix}.c2"), y, &s2, false).expect("c2")
            };
            let sum = g
                .binary(&format!("{prefix}.add"), PointwiseFn::Add, body, shortcut)
                .expect("residual add");
            x = g
                .unary(&format!("{prefix}.relu"), PointwiseFn::Relu, sum)
                .expect("relu");
            cin = cout.clone();
        }
    }

    // Head: global average pool → FC → softmax loss.
    let spatial = g.tensor(x).shape.dim(2).clone();
    let k = spatial.as_const().expect("spatial dims are constant").num() as u64;
    x = g.pool("head.gap", PoolKind::Avg, x, k, k, 0).expect("gap");
    // `final_channels` recomputed in expr space: (w·2³)·expansion.
    let cfinal = w * Expr::from(8 * expansion);
    let flat = g
        .reshape("head.flat", x, [b.clone(), cfinal.clone()])
        .expect("reshape");
    let wo = g
        .weight("head.fc", [cfinal, Expr::from(cfg.classes)])
        .expect("fc");
    let bo = g
        .weight("head.fc_bias", [Expr::from(cfg.classes)])
        .expect("bias");
    let logits = g
        .matmul("head.logits", flat, wo, false, false)
        .expect("matmul");
    let logits = g.bias_add("head.bias", logits, bo).expect("bias add");
    let labels = g.input("labels", [b], DType::I32).expect("labels");
    let loss = g.cross_entropy("loss", logits, labels).expect("loss");

    ModelGraph {
        graph: g,
        loss,
        domain: Domain::ImageClassification,
        is_training: false,
        seq_len: 1,
        labels_per_sample: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_count_matches_closed_form_all_depths() {
        for depth in [
            ResNetDepth::D18,
            ResNetDepth::D34,
            ResNetDepth::D50,
            ResNetDepth::D101,
            ResNetDepth::D152,
        ] {
            let cfg = ResNetConfig {
                depth,
                width: 16,
                image: 64,
                ..Default::default()
            };
            let m = build_resnet(&cfg);
            assert_eq!(m.param_count(), cfg.param_formula(), "depth {:?}", depth);
            m.graph.validate().unwrap();
        }
    }

    #[test]
    fn resnet50_has_canonical_param_count() {
        // torchvision ResNet-50: 25.557M parameters.
        let cfg = ResNetConfig::default();
        let p = cfg.param_formula() as f64;
        assert!(
            (p - 25.557e6).abs() / 25.557e6 < 0.01,
            "ResNet-50 params {p} should be ≈25.56M"
        );
    }

    #[test]
    fn training_graph_validates() {
        let cfg = ResNetConfig {
            depth: ResNetDepth::D18,
            width: 8,
            image: 32,
            classes: 10,
        };
        let m = build_resnet(&cfg).into_training();
        m.graph.validate().unwrap();
    }

    #[test]
    fn spatial_chain_floors_to_seven_at_224() {
        let cfg = ResNetConfig::default();
        let m = build_resnet(&cfg);
        // Final residual activation is [b, 2048, 7, 7].
        let gap = m
            .graph
            .ops()
            .iter()
            .find(|o| o.name == "head.gap")
            .expect("gap op");
        let in_shape = &m.graph.tensor(gap.inputs[0]).shape;
        assert_eq!(in_shape.dim(2), &Expr::int(7));
        assert_eq!(in_shape.dim(1), &Expr::int(2048));
    }

    #[test]
    fn flops_per_param_is_high_for_convnets() {
        // Convolutions reuse each weight across all spatial positions, so
        // FLOPs/param is far higher than recurrent models (Table 2 ≈ 1111).
        let m = build_resnet(&ResNetConfig::default()).into_training();
        let n = m.graph.stats().eval(&m.bindings_with_batch(1)).unwrap();
        let ratio = n.flops / n.params;
        assert!(ratio > 500.0, "flops/param = {ratio}");
    }

    #[test]
    fn with_target_params_scales_width() {
        for target in [100_000_000u64, 700_000_000] {
            let cfg = ResNetConfig::default().with_target_params(target);
            let rel = (cfg.param_formula() as f64 - target as f64).abs() / target as f64;
            assert!(rel < 0.10, "target {target}: rel err {rel}");
        }
    }

    #[test]
    fn deeper_nets_have_more_ops_and_params() {
        let small = ResNetConfig {
            depth: ResNetDepth::D50,
            width: 16,
            image: 64,
            ..Default::default()
        };
        let big = ResNetConfig {
            depth: ResNetDepth::D152,
            width: 16,
            image: 64,
            ..Default::default()
        };
        let ms = build_resnet(&small);
        let mb = build_resnet(&big);
        assert!(mb.graph.ops().len() > ms.graph.ops().len());
        assert!(mb.param_count() > ms.param_count());
    }
}
