//! Shared scaffolding for model builders.

use cgraph::{build_training_step, Graph, TensorId};
use serde::{Deserialize, Serialize};
use symath::{Bindings, Expr, Symbol};

/// The name of the subbatch-size symbol every model graph is parameterized
/// over. Bind it (via [`ModelGraph::bindings_with_batch`]) to evaluate costs
/// at a concrete subbatch size.
pub const BATCH_SYM: &str = "b";

/// The five DL domains studied in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Domain {
    /// Word language modeling (LSTM, Fig 2).
    WordLm,
    /// Character language modeling (recurrent highway network, Fig 3).
    CharLm,
    /// Neural machine translation (enc/dec + attention, Fig 4).
    Nmt,
    /// Speech recognition (enc/dec + attention, Fig 5).
    Speech,
    /// Image classification (ResNet, Fig 1).
    ImageClassification,
}

impl Domain {
    /// All domains in the paper's table order.
    pub const ALL: [Domain; 5] = [
        Domain::WordLm,
        Domain::CharLm,
        Domain::Nmt,
        Domain::Speech,
        Domain::ImageClassification,
    ];

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Domain::WordLm => "Word LMs (LSTM)",
            Domain::CharLm => "Character LMs (RHN)",
            Domain::Nmt => "NMT (enc/dec+attn)",
            Domain::Speech => "Speech Recogn. (enc/dec+attn)",
            Domain::ImageClassification => "Image Classification (ResNet)",
        }
    }

    /// Short machine-friendly key.
    pub fn key(&self) -> &'static str {
        match self {
            Domain::WordLm => "wordlm",
            Domain::CharLm => "charlm",
            Domain::Nmt => "nmt",
            Domain::Speech => "speech",
            Domain::ImageClassification => "resnet",
        }
    }
}

/// A built model: the forward graph (optionally extended to a full training
/// step), its loss, and the symbols it is parameterized over.
#[derive(Clone, Debug)]
pub struct ModelGraph {
    /// The compute graph.
    pub graph: Graph,
    /// Scalar loss tensor.
    pub loss: TensorId,
    /// Which domain this instance belongs to.
    pub domain: Domain,
    /// Whether backward + update phases have been appended.
    pub is_training: bool,
    /// Per-sample sequence length (1 for image models): the number of
    /// recurrent unroll steps this graph was built with.
    pub seq_len: u64,
    /// Training-set samples consumed per batch element per step — the
    /// predicted tokens of an LM sequence (`q`), the target tokens of a
    /// translation, or 1 for an image classifier. Used for epoch accounting.
    pub labels_per_sample: u64,
}

impl ModelGraph {
    /// Append backward and SGD-update phases (idempotent guard: panics if
    /// already a training graph).
    pub fn into_training(mut self) -> ModelGraph {
        assert!(!self.is_training, "graph is already a training graph");
        build_training_step(&mut self.graph, self.loss)
            .expect("model graphs must be differentiable");
        self.is_training = true;
        self
    }

    /// The batch symbol shared by all models.
    pub fn batch_symbol(&self) -> Symbol {
        Symbol::new(BATCH_SYM)
    }

    /// Bindings with the subbatch size set to `b`.
    pub fn bindings_with_batch(&self, b: u64) -> Bindings {
        Bindings::new().with(BATCH_SYM, b as f64)
    }

    /// Training samples consumed per step at subbatch `b`
    /// (`b · labels_per_sample`).
    pub fn samples_per_step(&self, b: u64) -> f64 {
        (b * self.labels_per_sample) as f64
    }

    /// Trainable parameter count (independent of batch size). Goes through
    /// the hash-consed [`Graph::params_id`](cgraph::Graph) so repeated
    /// queries of the same model family hit the interner's compiled program.
    pub fn param_count(&self) -> u64 {
        self.graph
            .params_id()
            .eval_u64(&Bindings::new())
            .expect("parameter shapes must not depend on the batch symbol")
    }
}

/// The shared batch-dimension expression.
pub fn batch() -> Expr {
    Expr::sym(BATCH_SYM)
}
