//! `modelzoo` — builders for the five deep-learning training workloads
//! characterized in Hestness et al., *Beyond Human-Level Accuracy* (PPoPP
//! 2019): word LM (LSTM), character LM (RHN), NMT and speech recognition
//! (encoder/decoder with attention), and ResNet image classification.
//!
//! Each builder produces a [`cgraph::Graph`] with the paper's layer
//! structure (Figs 1–5), parameterized over a symbolic subbatch size
//! ([`BATCH_SYM`]) and scalable to a target parameter count via
//! `with_target_params` — the knobs the paper turns in §4.1 (hidden width
//! for recurrent models; depth and channels for ResNets).
//!
//! ```
//! use modelzoo::{ModelConfig, Domain};
//!
//! let cfg = ModelConfig::default_for(Domain::WordLm).with_target_params(50_000_000);
//! let model = cfg.build_training();
//! let n = model.graph.stats().eval(&model.bindings_with_batch(32)).unwrap();
//! assert!(n.flops > 0.0 && n.params > 4.0e7);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attention;
mod charlm;
mod common;
mod decode;
mod family;
pub mod lstm;
mod nmt;
mod resnet;
mod speech;
mod sweep;
mod transformer;
mod wordlm;

pub use charlm::{build_char_lm, build_char_lm_dims, CharLmConfig};
pub use common::{batch, Domain, ModelGraph, BATCH_SYM};
pub use decode::{
    build_transformer_decode_dims, build_transformer_prefill_dims, InferGraph, CTX_SYM, HEADS_SYM,
    HEAD_DIM_SYM, PROMPT_SYM,
};
pub use family::{PROJ_SYM, WIDTH_SYM};
pub use nmt::{build_nmt, build_nmt_dims, NmtConfig};
pub use resnet::{build_resnet, build_resnet_dims, ResNetConfig, ResNetDepth};
pub use speech::{build_speech, build_speech_dims, SpeechConfig};
pub use sweep::{log_spaced_targets, sweep_configs, ModelConfig};
pub use transformer::{build_transformer, TransformerConfig};
pub use wordlm::{build_word_lm, build_word_lm_dims, WordLmConfig};
