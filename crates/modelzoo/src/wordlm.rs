//! Word language model: embedding → stacked LSTM → (optional projection) →
//! FC output over the vocabulary (paper Fig 2, §4.2, §6).

use cgraph::{DType, Graph, TensorId};
use serde::{Deserialize, Serialize};
use symath::Expr;

use crate::common::{batch, Domain, ModelGraph};
use crate::lstm::{lstm_layer, split_timesteps};

/// Hyperparameters of the word LM.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WordLmConfig {
    /// Vocabulary size `v`.
    pub vocab: u64,
    /// Hidden width `h` per recurrent layer.
    pub hidden: u64,
    /// Number of stacked LSTM layers `l`.
    pub layers: u64,
    /// Unrolled sequence length `q`.
    pub seq_len: u64,
    /// Optional LSTM-projection width (paper §6.1): the last hidden layer is
    /// projected to this dimension before the output matmul.
    pub projection: Option<u64>,
    /// Share the embedding table with the output layer (weight tying).
    /// The paper's Table 2 asymptote — exactly `6q` FLOPs/param with a
    /// perfectly linear Figure 7 — only arises when every parameter is
    /// touched each unroll step, i.e. with tied embeddings. Incompatible
    /// with `projection` (the dimensions no longer match).
    pub tied_embedding: bool,
}

impl Default for WordLmConfig {
    fn default() -> WordLmConfig {
        // Matches the paper's characterization setup: 2-layer LSTM, 80-step
        // unroll, 40k vocabulary (the FLOPs/param asymptote 6q ≈ 480 of
        // Table 2 requires q = 80).
        WordLmConfig {
            vocab: 40_000,
            hidden: 1024,
            layers: 2,
            seq_len: 80,
            projection: None,
            tied_embedding: true,
        }
    }
}

impl WordLmConfig {
    /// Closed-form parameter count (embedding + recurrent + output):
    /// `p = v·h + 8h²·l + (proj terms | h·v)` plus biases.
    pub fn param_formula(&self) -> u64 {
        let h = self.hidden;
        let v = self.vocab;
        let l = self.layers;
        let recurrent = 8 * h * h * l + 4 * h * l;
        let (proj, out) = match self.projection {
            Some(p) => (h * p, p * v),
            None if self.tied_embedding => (0, 0), // output reuses the table
            None => (0, h * v),
        };
        v * h + recurrent + proj + out + v // embedding + rec + proj + out + out bias
    }

    /// Solve `param_formula ≈ target` for `hidden`, holding the other
    /// hyperparameters fixed (quadratic in `h`; projection treated at its
    /// default ratio when enabled).
    pub fn with_target_params(mut self, target: u64) -> WordLmConfig {
        // p ≈ 8l·h² + c₁·h with c₁ from embedding/output/projection terms.
        let l = self.layers as f64;
        let v = self.vocab as f64;
        let a = 8.0 * l;
        let c1 = match self.projection {
            // proj = h/8: h·(h/8) adds h²/8; output (h/8)·v adds v/8·h.
            Some(_) => v + v / 8.0,
            None if self.tied_embedding => v,
            None => 2.0 * v,
        };
        let a = match self.projection {
            Some(_) => a + 1.0 / 8.0,
            None => a,
        };
        // Discount the h-independent terms (output bias) before solving.
        let t = (target.saturating_sub(self.vocab)) as f64;
        let h = ((c1 * c1 + 4.0 * a * t).sqrt() - c1) / (2.0 * a);
        self.hidden = (h.round() as u64).max(8);
        if self.projection.is_some() {
            self.projection = Some((self.hidden / 8).max(1));
        }
        self
    }
}

/// Build the forward graph for `cfg`.
pub fn build_word_lm(cfg: &WordLmConfig) -> ModelGraph {
    build_word_lm_dims(cfg, Expr::from(cfg.hidden), cfg.projection.map(Expr::from))
}

/// Build the forward graph with the width dimensions given as expressions.
///
/// `cfg` supplies the *structure* (vocab, layer count, unroll length, tying,
/// whether a projection exists); `h` and `projection` supply the widths and
/// may be free symbols. Passing `Expr::from(cfg.hidden)` reproduces
/// [`build_word_lm`] exactly: the builder only combines widths with ring
/// operations (`+`, `×`), so an integer width and a symbol later substituted
/// with that integer yield the same canonical cost expressions.
pub fn build_word_lm_dims(
    cfg: &WordLmConfig,
    h: impl Into<Expr>,
    projection: Option<Expr>,
) -> ModelGraph {
    let h = h.into();
    assert!(
        !(cfg.tied_embedding && projection.is_some()),
        "weight tying is incompatible with an LSTM projection"
    );
    let mut g = Graph::new(format!("wordlm_h{h}"));
    let b = batch();
    let (v, q) = (cfg.vocab, cfg.seq_len);

    let tokens = g
        .input("tokens", [b.clone(), Expr::from(q)], DType::I32)
        .expect("fresh graph");
    let table = g
        .weight("embedding", [Expr::from(v), h.clone()])
        .expect("fresh graph");
    let embedded = g.gather("embed", table, tokens).expect("gather");

    let mut xs = split_timesteps(&mut g, "steps", embedded, q).expect("split");
    for layer in 0..cfg.layers {
        xs = lstm_layer(
            &mut g,
            &format!("lstm{layer}"),
            &xs,
            h.clone(),
            h.clone(),
            false,
        )
        .expect("lstm layer");
    }

    // Stack the per-step hiddens back to [b·q, h] for the output projection.
    let seq = {
        let stacked: Vec<TensorId> = xs
            .iter()
            .enumerate()
            .map(|(t, &x)| {
                g.reshape(&format!("unsq{t}"), x, [b.clone(), Expr::one(), h.clone()])
                    .expect("reshape")
            })
            .collect();
        g.concat("restack", &stacked, 1).expect("concat")
    };
    let flat = g
        .reshape("flatten", seq, [b.clone() * Expr::from(q), h.clone()])
        .expect("reshape");

    let features = match &projection {
        Some(p) => {
            let wp = g
                .weight("proj.w", [h.clone(), p.clone()])
                .expect("proj weight");
            g.matmul("proj", flat, wp, false, false).expect("proj")
        }
        None => flat,
    };

    let bo = g.weight("out.b", [Expr::from(v)]).expect("out bias");
    let logits = if cfg.tied_embedding && projection.is_none() {
        // Weight tying: logits = features · tableᵀ.
        g.matmul("out", features, table, false, true)
            .expect("out matmul")
    } else {
        let feat_dim = projection.unwrap_or(h);
        let wo = g
            .weight("out.w", [feat_dim, Expr::from(v)])
            .expect("out weight");
        g.matmul("out", features, wo, false, false)
            .expect("out matmul")
    };
    let logits = g.bias_add("out_bias", logits, bo).expect("bias");

    let labels = g
        .input("labels", [b * Expr::from(q)], DType::I32)
        .expect("labels");
    let loss = g.cross_entropy("loss", logits, labels).expect("loss");

    ModelGraph {
        graph: g,
        loss,
        domain: Domain::WordLm,
        is_training: false,
        seq_len: q,
        labels_per_sample: q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph::{footprint, Scheduler};

    fn small() -> WordLmConfig {
        WordLmConfig {
            vocab: 1000,
            hidden: 64,
            layers: 2,
            seq_len: 10,
            projection: None,
            tied_embedding: false,
        }
    }

    fn small_tied() -> WordLmConfig {
        WordLmConfig {
            tied_embedding: true,
            ..small()
        }
    }

    #[test]
    fn tied_embedding_gives_exact_6q_matmul_flops_per_param() {
        // With tying, every parameter is touched each unroll step:
        // forward matmul FLOPs = 2q·p exactly; training ≈ 6q·p.
        let cfg = small_tied();
        let m = build_word_lm(&cfg).into_training();
        let n = m.graph.stats().eval(&m.bindings_with_batch(1)).unwrap();
        let ratio = n.flops / n.params;
        let asymptote = 6.0 * cfg.seq_len as f64;
        // Pointwise gate math and the loss add ~10% on top of the matmuls
        // at this small width.
        assert!(
            (ratio / asymptote - 1.0).abs() < 0.15,
            "flops/param {ratio} vs 6q = {asymptote}"
        );
    }

    #[test]
    fn tied_embedding_removes_output_matrix_params() {
        let untied = build_word_lm(&small()).param_count();
        let tied = build_word_lm(&small_tied()).param_count();
        let (v, h) = (small().vocab, small().hidden);
        assert_eq!(untied - tied, v * h);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn tying_with_projection_is_rejected() {
        let cfg = WordLmConfig {
            tied_embedding: true,
            projection: Some(8),
            ..small()
        };
        let _ = build_word_lm(&cfg);
    }

    #[test]
    fn param_count_matches_closed_form() {
        let cfg = small();
        let m = build_word_lm(&cfg);
        assert_eq!(m.param_count(), cfg.param_formula());
        m.graph.validate().unwrap();
    }

    #[test]
    fn param_count_matches_closed_form_with_projection() {
        let cfg = WordLmConfig {
            projection: Some(8),
            ..small()
        };
        let m = build_word_lm(&cfg);
        assert_eq!(m.param_count(), cfg.param_formula());
    }

    #[test]
    fn flops_per_param_approaches_6q_for_large_h() {
        // Forward ≈ q(16h²l + 2hv); training ≈ 3× forward; params ≈ 8h²l+2hv.
        // As h → ∞ the ratio per sample → 6q (paper §4.2 asymptote).
        let cfg = WordLmConfig {
            vocab: 1000,
            hidden: 512,
            layers: 2,
            seq_len: 10,
            projection: None,
            tied_embedding: false,
        };
        let m = build_word_lm(&cfg).into_training();
        let n = m.graph.stats().eval(&m.bindings_with_batch(1)).unwrap();
        let ratio = n.flops / n.params;
        let asymptote = 6.0 * cfg.seq_len as f64;
        assert!(
            ratio > 0.6 * asymptote && ratio < 1.1 * asymptote,
            "flops/param {ratio} vs 6q = {asymptote}"
        );
    }

    #[test]
    fn training_graph_validates_and_updates_all_weights() {
        let m = build_word_lm(&small()).into_training();
        m.graph.validate().unwrap();
        let updates = m
            .graph
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, cgraph::OpKind::SgdUpdate))
            .count();
        // embedding + 2×(wx, wh, bias) + out.w + out.b = 9
        assert_eq!(updates, 9);
    }

    #[test]
    fn footprint_grows_with_batch() {
        let m = build_word_lm(&small()).into_training();
        let f1 = footprint(&m.graph, &m.bindings_with_batch(1), Scheduler::ProgramOrder)
            .unwrap()
            .peak_bytes;
        let f32_ = footprint(
            &m.graph,
            &m.bindings_with_batch(32),
            Scheduler::ProgramOrder,
        )
        .unwrap()
        .peak_bytes;
        assert!(f32_ > f1);
        // Persistent weights dominate at b=1, so scaling is sublinear in b.
        assert!(f32_ < 32 * f1);
    }

    #[test]
    fn with_target_params_inverts_formula() {
        for target in [1_000_000u64, 10_000_000, 100_000_000] {
            let cfg = WordLmConfig::default().with_target_params(target);
            let got = cfg.param_formula() as f64;
            let rel = (got - target as f64).abs() / target as f64;
            assert!(rel < 0.05, "target {target}: got {got} (rel err {rel})");
        }
    }

    #[test]
    fn projection_reduces_output_flops() {
        let base = WordLmConfig {
            vocab: 50_000,
            hidden: 256,
            layers: 2,
            seq_len: 10,
            projection: None,
            tied_embedding: false,
        };
        let proj = WordLmConfig {
            projection: Some(32),
            tied_embedding: false,
            ..base
        };
        let f_base = build_word_lm(&base)
            .into_training()
            .graph
            .stats()
            .eval(&symath::Bindings::new().with("b", 8.0))
            .unwrap()
            .flops;
        let f_proj = build_word_lm(&proj)
            .into_training()
            .graph
            .stats()
            .eval(&symath::Bindings::new().with("b", 8.0))
            .unwrap()
            .flops;
        assert!(
            f_proj < 0.5 * f_base,
            "projection should cut output-layer FLOPs: {f_proj} vs {f_base}"
        );
    }
}
