//! Decoder-only Transformer language model — a post-paper architecture
//! (Vaswani et al. 2017) added to test the paper's framework on the model
//! family that ultimately dominated. The paper's own caveat motivates it:
//! "it is very difficult to predict the model structures that will be
//! important for future DL applications" (§1).
//!
//! Per layer: fused QKV + output projections (`4d²` parameters), a
//! 4×-wide MLP (`8d²`), and two pre-norms. Attention is batched per
//! sequence (`[b, q, q]` score tensors), so its FLOPs carry the
//! quadratic-in-`q` term that distinguishes Transformers from the paper's
//! recurrent models: training FLOPs/param ≈ `6q + q²/d` with tying.

use cgraph::{DType, Graph, GraphError, PointwiseFn, TensorId};
use serde::{Deserialize, Serialize};
use symath::Expr;

use crate::common::{batch, Domain, ModelGraph};

/// Hyperparameters of the Transformer LM.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: u64,
    /// Model width `d`.
    pub d_model: u64,
    /// Decoder layers.
    pub layers: u64,
    /// Sequence length `q`.
    pub seq_len: u64,
    /// MLP expansion factor (canonically 4).
    pub ff_mult: u64,
    /// Tie the embedding with the output projection.
    pub tied_embedding: bool,
}

impl Default for TransformerConfig {
    fn default() -> TransformerConfig {
        TransformerConfig {
            vocab: 40_000,
            d_model: 1024,
            layers: 12,
            seq_len: 80,
            ff_mult: 4,
            tied_embedding: true,
        }
    }
}

impl TransformerConfig {
    /// Closed-form parameter count mirroring the builder.
    pub fn param_formula(&self) -> u64 {
        let d = self.d_model;
        let per_layer = 4 * d * d               // Wq, Wk, Wv, Wo
            + 2 * self.ff_mult * d * d          // MLP in/out
            + 2 * (2 * d); // two norms (scale+shift)
        let out = if self.tied_embedding {
            0
        } else {
            d * self.vocab
        };
        self.vocab * d + self.layers * per_layer + out + self.vocab // + out bias
    }

    /// Solve the parameter formula for `d_model` (quadratic).
    pub fn with_target_params(mut self, target: u64) -> TransformerConfig {
        let a = (self.layers * (4 + 2 * self.ff_mult)) as f64;
        let c1 = if self.tied_embedding {
            self.vocab as f64
        } else {
            2.0 * self.vocab as f64
        } + (4 * self.layers) as f64;
        let t = target.saturating_sub(self.vocab) as f64;
        let d = ((c1 * c1 + 4.0 * a * t).sqrt() - c1) / (2.0 * a);
        self.d_model = (d.round() as u64).max(8);
        self
    }
}

fn norm(g: &mut Graph, name: &str, x: TensorId, d: u64) -> Result<TensorId, GraphError> {
    // Modeled with the BatchNorm op (same algorithmic shape: statistics +
    // normalize + affine, 8 FLOPs/element).
    let gamma = g.weight(format!("{name}.ln"), [Expr::from(2 * d)])?;
    g.batch_norm(&format!("{name}.ln_op"), x, gamma)
}

/// Build the forward graph for `cfg`.
pub fn build_transformer(cfg: &TransformerConfig) -> ModelGraph {
    let mut g = Graph::new(format!("transformer_d{}", cfg.d_model));
    let b = batch();
    let (v, d, q) = (cfg.vocab, cfg.d_model, cfg.seq_len);
    let bq = b.clone() * Expr::from(q);

    let tokens = g
        .input("tokens", [bq.clone()], DType::I32)
        .expect("fresh graph");
    let table = g
        .weight("embedding", [Expr::from(v), Expr::from(d)])
        .expect("weight");
    let emb = g.gather("embed", table, tokens).expect("gather");
    let mut x = g
        .reshape("flat0", emb, [bq.clone(), Expr::from(d)])
        .expect("reshape");

    for layer in 0..cfg.layers {
        let name = |s: &str| format!("l{layer}.{s}");
        // --- attention block (pre-norm) ---
        let normed = norm(&mut g, &name("attn"), x, d).expect("norm");
        let wqkv = g
            .weight(name("wqkv"), [Expr::from(d), Expr::from(3 * d)])
            .expect("w");
        let qkv = g
            .matmul(&name("qkv"), normed, wqkv, false, false)
            .expect("mm");
        let parts = g.split(&name("qkv_split"), qkv, 1, 3).expect("split");
        // Per-sequence attention: reshape to [b, q, d].
        let seq = |g: &mut Graph, t: TensorId, nm: String| {
            g.reshape(&nm, t, [b.clone(), Expr::from(q), Expr::from(d)])
        };
        let q3 = seq(&mut g, parts[0], name("q3")).expect("reshape");
        let k3 = seq(&mut g, parts[1], name("k3")).expect("reshape");
        let v3 = seq(&mut g, parts[2], name("v3")).expect("reshape");
        let scores = g
            .batch_matmul(&name("scores"), q3, k3, false, true)
            .expect("bmm");
        let probs = g.softmax(&name("softmax"), scores).expect("softmax");
        let ctx = g
            .batch_matmul(&name("ctx"), probs, v3, false, false)
            .expect("bmm");
        let ctx = g
            .reshape(&name("ctx_flat"), ctx, [bq.clone(), Expr::from(d)])
            .expect("reshape");
        let wo = g
            .weight(name("wo"), [Expr::from(d), Expr::from(d)])
            .expect("w");
        let proj = g.matmul(&name("proj"), ctx, wo, false, false).expect("mm");
        x = g
            .binary(&name("resid1"), PointwiseFn::Add, proj, x)
            .expect("add");

        // --- MLP block (pre-norm) ---
        let normed = norm(&mut g, &name("mlp"), x, d).expect("norm");
        let w1 = g
            .weight(name("w1"), [Expr::from(d), Expr::from(cfg.ff_mult * d)])
            .expect("w");
        let w2 = g
            .weight(name("w2"), [Expr::from(cfg.ff_mult * d), Expr::from(d)])
            .expect("w");
        let h = g
            .matmul(&name("mlp1"), normed, w1, false, false)
            .expect("mm");
        let h = g.unary(&name("gelu"), PointwiseFn::Tanh, h).expect("act");
        let h = g.matmul(&name("mlp2"), h, w2, false, false).expect("mm");
        x = g
            .binary(&name("resid2"), PointwiseFn::Add, h, x)
            .expect("add");
    }

    let bo = g.weight("out.b", [Expr::from(v)]).expect("bias");
    let logits = if cfg.tied_embedding {
        g.matmul("out", x, table, false, true).expect("tied out")
    } else {
        let wo = g
            .weight("out.w", [Expr::from(d), Expr::from(v)])
            .expect("w");
        g.matmul("out", x, wo, false, false).expect("out")
    };
    let logits = g.bias_add("out_bias", logits, bo).expect("bias");
    let labels = g.input("labels", [bq], DType::I32).expect("labels");
    let loss = g.cross_entropy("loss", logits, labels).expect("loss");

    ModelGraph {
        graph: g,
        loss,
        domain: Domain::WordLm, // same task family; not part of Domain::ALL
        is_training: false,
        seq_len: q,
        labels_per_sample: q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordlm::{build_word_lm, WordLmConfig};

    fn small() -> TransformerConfig {
        TransformerConfig {
            vocab: 1000,
            d_model: 64,
            layers: 3,
            seq_len: 8,
            ff_mult: 4,
            tied_embedding: true,
        }
    }

    #[test]
    fn param_count_matches_closed_form() {
        for tied in [true, false] {
            let cfg = TransformerConfig {
                tied_embedding: tied,
                ..small()
            };
            let m = build_transformer(&cfg);
            assert_eq!(m.param_count(), cfg.param_formula(), "tied = {tied}");
            m.graph.validate().unwrap();
        }
    }

    #[test]
    fn training_graph_validates() {
        let m = build_transformer(&small()).into_training();
        m.graph.validate().unwrap();
    }

    #[test]
    fn with_target_params_inverts_formula() {
        for target in [10_000_000u64, 300_000_000] {
            let cfg = TransformerConfig::default().with_target_params(target);
            let rel = (cfg.param_formula() as f64 - target as f64).abs() / target as f64;
            assert!(rel < 0.05, "target {target}: rel err {rel}");
        }
    }

    #[test]
    fn flops_per_param_is_6q_plus_attention_term() {
        // Training FLOPs/param ≈ 6q + O(q²/d): with d ≫ q it approaches the
        // LSTM's 6q; the attention surcharge is the architectural signature.
        let cfg = TransformerConfig {
            vocab: 1000,
            d_model: 512,
            layers: 4,
            seq_len: 16,
            ff_mult: 4,
            tied_embedding: true,
        };
        let m = build_transformer(&cfg).into_training();
        let n = m.graph.stats().eval(&m.bindings_with_batch(1)).unwrap();
        let ratio = n.flops / n.params;
        let floor = 6.0 * cfg.seq_len as f64;
        assert!(
            ratio > floor && ratio < 1.35 * floor,
            "flops/param {ratio} vs 6q = {floor}"
        );
    }

    #[test]
    fn attention_flops_grow_quadratically_in_sequence_length() {
        let flops_at = |q: u64| {
            let cfg = TransformerConfig {
                seq_len: q,
                ..small()
            };
            let m = build_transformer(&cfg).into_training();
            m.graph
                .stats()
                .eval(&m.bindings_with_batch(1))
                .unwrap()
                .flops
        };
        // Subtract the linear-in-q part measured at two small lengths; what
        // remains must scale ~4× when q doubles.
        let (f8, f16, f32_) = (flops_at(8), flops_at(16), flops_at(32));
        let linear = f16 - f8; // ≈ slope · 8 (plus small quadratic residue)
        let growth_16_32 = f32_ - f16;
        assert!(
            growth_16_32 > 2.0 * linear,
            "expected superlinear growth: {growth_16_32} vs linear {linear}"
        );
    }

    #[test]
    fn matches_lstm_cost_family_at_equal_params_and_tokens() {
        // At the same parameter budget, token budget, and d ≫ q, the
        // Transformer and the tied LSTM cost within ~25% of each other per
        // step — the architectures differ, the paper's FLOPs/param logic
        // carries over.
        let target = 30_000_000u64;
        let q = 16u64;
        let tf = build_transformer(
            &TransformerConfig {
                seq_len: q,
                ..TransformerConfig::default()
            }
            .with_target_params(target),
        )
        .into_training();
        let lstm = build_word_lm(
            &WordLmConfig {
                seq_len: q,
                ..WordLmConfig::default()
            }
            .with_target_params(target),
        )
        .into_training();
        let ntf = tf.graph.stats().eval(&tf.bindings_with_batch(8)).unwrap();
        let nlstm = lstm
            .graph
            .stats()
            .eval(&lstm.bindings_with_batch(8))
            .unwrap();
        let ratio = ntf.flops / nlstm.flops;
        assert!(
            (0.75..1.35).contains(&ratio),
            "transformer/LSTM step FLOPs ratio {ratio}"
        );
    }
}
