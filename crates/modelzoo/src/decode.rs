//! Inference-phase Transformer builders: prompt **prefill** and single-step
//! batched **decode**.
//!
//! Serving a decoder-only LM has two phases with opposite roofline
//! character (the "millions of users" regime of the paper's §1 north star):
//!
//! * **prefill** — the prompt is processed in one forward pass, identical in
//!   shape to a training forward pass minus the output head and loss. Large
//!   matmuls, compute-bound.
//! * **decode** — one token per sequence per step. Every weight matrix is
//!   read once per step regardless of batch size, and the per-sequence
//!   KV cache (`[b, ctx, d]` per layer for K and for V) is streamed from
//!   memory, so arithmetic intensity collapses toward O(1) FLOP/byte and
//!   the phase prices off memory bandwidth, not peak FLOP/s.
//!
//! Both builders are **dims-generic**: batch, sequence/context length, and
//! model width are `impl Into<Expr>`, and every shape is combined with ring
//! operations only (add/mul — no floors), so building once with symbols and
//! substituting via `bind_all` yields expressions *bit-identical* under
//! evaluation to building with the integers inlined. This is the same
//! contract the training-side `build_*_dims` builders follow, and it is what
//! lets the KV-cache footprint sweep symbolically through the inference
//! engine.
//!
//! The decode builder deliberately represents the KV cache as `Input`
//! tensors of length `ctx` (defined to *include* the current token) rather
//! than materializing a `Concat` append: a concat op would write the whole
//! `[b, ctx, d]` output each step, overcounting the append — the new token's
//! K/V rows are already counted as the QKV projection's output write.

use cgraph::{DType, Graph, GraphError, PointwiseFn, TensorId};
use symath::Expr;

use crate::common::batch;
use crate::transformer::TransformerConfig;

/// A forward-only inference graph plus its result tensor.
///
/// Unlike [`ModelGraph`](crate::ModelGraph) there is no loss and no training
/// path: these graphs price a serving step, and the forward-only stats view
/// (`stats_interned().forward_view()`) is guaranteed to be `Some`.
#[derive(Clone, Debug)]
pub struct InferGraph {
    /// The forward-only compute graph.
    pub graph: Graph,
    /// The final tensor: last hidden states for prefill, logits for decode.
    pub output: TensorId,
}

/// Symbol for the decode context length (prompt + generated so far).
pub const CTX_SYM: &str = "inf_ctx";
/// Symbol for the prompt (prefill) length.
pub const PROMPT_SYM: &str = "inf_p";
/// Symbol for the attention head count.
pub const HEADS_SYM: &str = "inf_h";
/// Symbol for the per-head dimension.
pub const HEAD_DIM_SYM: &str = "inf_hd";

fn norm_dims(g: &mut Graph, name: &str, x: TensorId, d: &Expr) -> Result<TensorId, GraphError> {
    // Same algorithmic shape as the training builder's norm: statistics +
    // normalize + affine via the BatchNorm op, scale/shift weight `[2d]`.
    let gamma = g.weight(format!("{name}.ln"), [Expr::from(2) * d.clone()])?;
    g.batch_norm(&format!("{name}.ln_op"), x, gamma)
}

/// Shared transformer trunk: embed `tokens_per_seq` tokens per sequence and
/// run `cfg.layers` pre-norm blocks with full per-sequence attention
/// (`[b, t, t]` scores). Returns the final `[b·t, d]` hidden states.
fn build_trunk(
    g: &mut Graph,
    cfg: &TransformerConfig,
    b: &Expr,
    t: &Expr,
    d: &Expr,
) -> (TensorId, TensorId) {
    let v = cfg.vocab;
    let bt = b.clone() * t.clone();

    let tokens = g.input("tokens", [bt.clone()], DType::I32).expect("input");
    let table = g
        .weight("embedding", [Expr::from(v), d.clone()])
        .expect("weight");
    let emb = g.gather("embed", table, tokens).expect("gather");
    let mut x = g
        .reshape("flat0", emb, [bt.clone(), d.clone()])
        .expect("reshape");

    for layer in 0..cfg.layers {
        let name = |s: &str| format!("l{layer}.{s}");
        // --- attention block (pre-norm) ---
        let normed = norm_dims(g, &name("attn"), x, d).expect("norm");
        let wqkv = g
            .weight(name("wqkv"), [d.clone(), Expr::from(3) * d.clone()])
            .expect("w");
        let qkv = g
            .matmul(&name("qkv"), normed, wqkv, false, false)
            .expect("mm");
        let parts = g.split(&name("qkv_split"), qkv, 1, 3).expect("split");
        let seq = |g: &mut Graph, tensor: TensorId, nm: String| {
            g.reshape(&nm, tensor, [b.clone(), t.clone(), d.clone()])
        };
        let q3 = seq(g, parts[0], name("q3")).expect("reshape");
        let k3 = seq(g, parts[1], name("k3")).expect("reshape");
        let v3 = seq(g, parts[2], name("v3")).expect("reshape");
        let scores = g
            .batch_matmul(&name("scores"), q3, k3, false, true)
            .expect("bmm");
        let probs = g.softmax(&name("softmax"), scores).expect("softmax");
        let ctx = g
            .batch_matmul(&name("ctx"), probs, v3, false, false)
            .expect("bmm");
        let ctx = g
            .reshape(&name("ctx_flat"), ctx, [bt.clone(), d.clone()])
            .expect("reshape");
        let wo = g.weight(name("wo"), [d.clone(), d.clone()]).expect("w");
        let proj = g.matmul(&name("proj"), ctx, wo, false, false).expect("mm");
        x = g
            .binary(&name("resid1"), PointwiseFn::Add, proj, x)
            .expect("add");

        // --- MLP block (pre-norm) ---
        let normed = norm_dims(g, &name("mlp"), x, d).expect("norm");
        let ff = Expr::from(cfg.ff_mult) * d.clone();
        let w1 = g.weight(name("w1"), [d.clone(), ff.clone()]).expect("w");
        let w2 = g.weight(name("w2"), [ff, d.clone()]).expect("w");
        let h = g
            .matmul(&name("mlp1"), normed, w1, false, false)
            .expect("mm");
        let h = g.unary(&name("gelu"), PointwiseFn::Tanh, h).expect("act");
        let h = g.matmul(&name("mlp2"), h, w2, false, false).expect("mm");
        x = g
            .binary(&name("resid2"), PointwiseFn::Add, h, x)
            .expect("add");
    }
    (x, table)
}

/// Attach the (optionally tied) output head: `[n, d] -> [n, vocab]` logits.
fn output_head(
    g: &mut Graph,
    cfg: &TransformerConfig,
    x: TensorId,
    table: TensorId,
    d: &Expr,
) -> TensorId {
    let bo = g.weight("out.b", [Expr::from(cfg.vocab)]).expect("bias");
    let logits = if cfg.tied_embedding {
        g.matmul("out", x, table, false, true).expect("tied out")
    } else {
        let wo = g
            .weight("out.w", [d.clone(), Expr::from(cfg.vocab)])
            .expect("w");
        g.matmul("out", x, wo, false, false).expect("out")
    };
    g.bias_add("out_bias", logits, bo).expect("bias")
}

/// Build the **prefill** graph: one forward pass over a `prompt`-token
/// prompt per sequence, producing the final hidden states (and, physically,
/// the KV cache — its write is the QKV projections' output, already priced).
///
/// No output head: the first emitted token comes from the first decode step,
/// so time-to-first-token = prefill + one decode step.
///
/// `cfg.seq_len` and `cfg.d_model` are ignored; the lengths and width come
/// from the `prompt` / `d_model` arguments so the same code path serves
/// concrete and symbolic builds.
pub fn build_transformer_prefill_dims(
    cfg: &TransformerConfig,
    prompt: impl Into<Expr>,
    d_model: impl Into<Expr>,
) -> InferGraph {
    let mut g = Graph::new("transformer_prefill");
    let b = batch();
    let p = prompt.into();
    let d = d_model.into();
    let (x, _table) = build_trunk(&mut g, cfg, &b, &p, &d);
    InferGraph {
        graph: g,
        output: x,
    }
}

/// Build one batched **decode step**: each of `b` sequences extends its
/// context (length `ctx`, current token included) by a single token.
///
/// The query is one token per sequence (`[b, 1, d]`); K and V are `Input`
/// tensors `[b, ctx, d]` per layer — the cache streamed from memory each
/// step. Scores are `[b, 1, ctx]`, so attention does `O(b·ctx·d)` FLOPs over
/// `O(b·ctx·d)` cache bytes: O(1) FLOP/byte, the memory-bound signature.
/// The step ends with the output head (`[b, vocab]` logits).
pub fn build_transformer_decode_dims(
    cfg: &TransformerConfig,
    ctx: impl Into<Expr>,
    d_model: impl Into<Expr>,
) -> InferGraph {
    let mut g = Graph::new("transformer_decode");
    let b = batch();
    let ctx = ctx.into();
    let d = d_model.into();
    let one = Expr::int(1);

    let tokens = g.input("tokens", [b.clone()], DType::I32).expect("input");
    let table = g
        .weight("embedding", [Expr::from(cfg.vocab), d.clone()])
        .expect("weight");
    let mut x = g.gather("embed", table, tokens).expect("gather");

    for layer in 0..cfg.layers {
        let name = |s: &str| format!("l{layer}.{s}");
        // --- attention block (pre-norm), query length 1 ---
        let normed = norm_dims(&mut g, &name("attn"), x, &d).expect("norm");
        let wqkv = g
            .weight(name("wqkv"), [d.clone(), Expr::from(3) * d.clone()])
            .expect("w");
        let qkv = g
            .matmul(&name("qkv"), normed, wqkv, false, false)
            .expect("mm");
        let parts = g.split(&name("qkv_split"), qkv, 1, 3).expect("split");
        let q3 = g
            .reshape(&name("q3"), parts[0], [b.clone(), one.clone(), d.clone()])
            .expect("reshape");
        // KV cache: inputs of length ctx (current token included) — the
        // per-step streaming traffic. The append write is parts[1]/parts[2],
        // already counted as the qkv matmul's output.
        let k_cache = g
            .input(
                name("k_cache"),
                [b.clone(), ctx.clone(), d.clone()],
                DType::F32,
            )
            .expect("input");
        let v_cache = g
            .input(
                name("v_cache"),
                [b.clone(), ctx.clone(), d.clone()],
                DType::F32,
            )
            .expect("input");
        let scores = g
            .batch_matmul(&name("scores"), q3, k_cache, false, true)
            .expect("bmm");
        let probs = g.softmax(&name("softmax"), scores).expect("softmax");
        let attn = g
            .batch_matmul(&name("ctx"), probs, v_cache, false, false)
            .expect("bmm");
        let attn = g
            .reshape(&name("ctx_flat"), attn, [b.clone(), d.clone()])
            .expect("reshape");
        let wo = g.weight(name("wo"), [d.clone(), d.clone()]).expect("w");
        let proj = g.matmul(&name("proj"), attn, wo, false, false).expect("mm");
        x = g
            .binary(&name("resid1"), PointwiseFn::Add, proj, x)
            .expect("add");

        // --- MLP block (pre-norm) ---
        let normed = norm_dims(&mut g, &name("mlp"), x, &d).expect("norm");
        let ff = Expr::from(cfg.ff_mult) * d.clone();
        let w1 = g.weight(name("w1"), [d.clone(), ff.clone()]).expect("w");
        let w2 = g.weight(name("w2"), [ff, d.clone()]).expect("w");
        let h = g
            .matmul(&name("mlp1"), normed, w1, false, false)
            .expect("mm");
        let h = g.unary(&name("gelu"), PointwiseFn::Tanh, h).expect("act");
        let h = g.matmul(&name("mlp2"), h, w2, false, false).expect("mm");
        x = g
            .binary(&name("resid2"), PointwiseFn::Add, h, x)
            .expect("add");
    }

    let logits = output_head(&mut g, cfg, x, table, &d);
    InferGraph {
        graph: g,
        output: logits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::BATCH_SYM;
    use symath::Bindings;

    fn small() -> TransformerConfig {
        TransformerConfig {
            vocab: 1000,
            d_model: 64,
            layers: 3,
            seq_len: 8,
            ff_mult: 4,
            tied_embedding: true,
        }
    }

    #[test]
    fn builders_validate_and_are_forward_only() {
        let cfg = small();
        for m in [
            build_transformer_prefill_dims(&cfg, 8u64, 64u64),
            build_transformer_decode_dims(&cfg, 8u64, 64u64),
        ] {
            m.graph.validate().unwrap();
            let stats = m.graph.stats_interned();
            assert!(
                stats.forward_view().is_some(),
                "inference graphs must have zero backward/update cost"
            );
        }
    }

    #[test]
    fn symbolic_build_binds_bit_identically_to_concrete() {
        let cfg = small();
        let (b, ctx, d) = (4u64, 23u64, 64u64);
        let sym = build_transformer_decode_dims(&cfg, Expr::sym(CTX_SYM), Expr::sym(HEAD_DIM_SYM));
        let conc = build_transformer_decode_dims(&cfg, ctx, d);
        let widths = Bindings::new()
            .with(CTX_SYM, ctx as f64)
            .with(HEAD_DIM_SYM, d as f64);
        let bound = sym.graph.stats_interned().bind_all(&widths);
        let batch_only = Bindings::new().with(BATCH_SYM, b as f64);
        let ns = bound.eval(&batch_only).unwrap();
        let nc = conc.graph.stats_interned().eval(&batch_only).unwrap();
        assert_eq!(ns, nc, "ring-ops-only contract broken");
    }

    #[test]
    fn decode_weight_traffic_is_batch_independent() {
        // One decode step reads every weight matrix exactly once, whatever
        // the batch: bytes(b) - b·(per-sequence bytes) is the constant weight
        // term, so bytes(2b) - bytes(b) = b·per_seq exactly.
        let cfg = small();
        let m = build_transformer_decode_dims(&cfg, 64u64, 64u64);
        let stats = m.graph.stats_interned();
        let at = |b: f64| {
            stats
                .eval(&Bindings::new().with(BATCH_SYM, b))
                .unwrap()
                .bytes
        };
        let (b1, b2, b3) = (at(1.0), at(2.0), at(3.0));
        assert!(
            (b3 - b2) - (b2 - b1) < 1e-6,
            "bytes must be affine in batch"
        );
        let weight_bytes = b1 - (b2 - b1);
        assert!(weight_bytes > 0.0, "constant weight-read term must exist");
    }

    #[test]
    fn decode_intensity_is_far_below_prefill_intensity() {
        let cfg = TransformerConfig {
            vocab: 4000,
            d_model: 512,
            layers: 6,
            seq_len: 128,
            ff_mult: 4,
            tied_embedding: true,
        };
        let b = Bindings::new().with(BATCH_SYM, 8.0);
        let prefill = build_transformer_prefill_dims(&cfg, 128u64, 512u64)
            .graph
            .stats_interned()
            .eval(&b)
            .unwrap();
        let decode = build_transformer_decode_dims(&cfg, 128u64, 512u64)
            .graph
            .stats_interned()
            .eval(&b)
            .unwrap();
        let (ip, id) = (
            prefill.operational_intensity(),
            decode.operational_intensity(),
        );
        assert!(
            ip > 10.0 * id,
            "prefill {ip:.1} FLOP/B should dwarf decode {id:.1} FLOP/B"
        );
        assert!(id < 10.0, "decode intensity should collapse toward O(1)");
    }
}
