//! Content-addressed query keys for memoizing analysis results.
//!
//! A [`QueryKey`] canonicalizes *what is being asked* — an endpoint name, a
//! [`Domain`](modelzoo::Domain), a [`ModelConfig`](modelzoo::ModelConfig),
//! symbol bindings, free-form parameters — into a deterministic string, and
//! hashes it to 128 bits (two independently-seeded FNV-1a-64 passes). Two
//! queries collide only if their canonical forms are equal, so the hash can
//! key a memoization cache directly: equal keys ⇒ equal answers.
//!
//! The canonical form is ordered by insertion, so callers must append fields
//! in a fixed order (builders in this workspace do). Bindings iterate in
//! `BTreeMap` order and are therefore canonical regardless of insertion
//! order.

use std::fmt::Write as _;

use modelzoo::{Domain, ModelConfig};
use symath::Bindings;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A canonical, hashable description of one analysis query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryKey {
    canonical: String,
}

impl QueryKey {
    /// Start a key for `endpoint` (e.g. `"characterize"`).
    pub fn new(endpoint: &str) -> QueryKey {
        QueryKey {
            canonical: format!("{endpoint};"),
        }
    }

    /// Append a named field. Values render via `Display`.
    pub fn field(mut self, name: &str, value: impl std::fmt::Display) -> QueryKey {
        let _ = write!(self.canonical, "{name}={value};");
        self
    }

    /// Append a domain tag.
    pub fn domain(self, domain: Domain) -> QueryKey {
        self.field("domain", domain.key())
    }

    /// Append a model configuration. `ModelConfig` is a plain-data enum of
    /// integer/boolean hyperparameters, so its `Debug` form is canonical
    /// (field order is declaration order, values are exact).
    pub fn config(mut self, cfg: &ModelConfig) -> QueryKey {
        let _ = write!(self.canonical, "config={cfg:?};");
        self
    }

    /// Append symbol bindings (sorted by symbol, exact float formatting).
    pub fn bindings(mut self, bindings: &Bindings) -> QueryKey {
        self.canonical.push_str("bindings=");
        for (sym, value) in bindings.iter() {
            let _ = write!(self.canonical, "{sym}:{value:?},");
        }
        self.canonical.push(';');
        self
    }

    /// The canonical string the hash is computed over.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 128-bit content hash of the canonical form.
    pub fn hash128(&self) -> u128 {
        let bytes = self.canonical.as_bytes();
        let lo = fnv1a(FNV_OFFSET, bytes);
        // Second pass with a seed derived from the first digest decorrelates
        // the two halves even for single-byte differences.
        let hi = fnv1a(lo ^ 0x9e37_79b9_7f4a_7c15, bytes);
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_queries_hash_equal() {
        let cfg = ModelConfig::default_for(Domain::WordLm).with_target_params(10_000_000);
        let b = Bindings::new().with("b", 16.0);
        let k1 = QueryKey::new("characterize").config(&cfg).bindings(&b);
        let k2 = QueryKey::new("characterize").config(&cfg).bindings(&b);
        assert_eq!(k1, k2);
        assert_eq!(k1.hash128(), k2.hash128());
    }

    #[test]
    fn different_fields_hash_differently() {
        let base = QueryKey::new("project").domain(Domain::WordLm);
        let other = QueryKey::new("project").domain(Domain::CharLm);
        assert_ne!(base.hash128(), other.hash128());
        // Endpoint participates too: same fields, different namespace.
        let ns = QueryKey::new("subbatch").domain(Domain::WordLm);
        assert_ne!(base.hash128(), ns.hash128());
    }

    #[test]
    fn binding_insertion_order_is_canonicalized() {
        let ab = Bindings::new().with("a", 1.0).with("z", 2.0);
        let ba = Bindings::new().with("z", 2.0).with("a", 1.0);
        let k1 = QueryKey::new("e").bindings(&ab);
        let k2 = QueryKey::new("e").bindings(&ba);
        assert_eq!(k1.canonical(), k2.canonical());
    }

    #[test]
    fn config_changes_change_the_key() {
        let small = ModelConfig::default_for(Domain::Nmt).with_target_params(5_000_000);
        let large = ModelConfig::default_for(Domain::Nmt).with_target_params(50_000_000);
        let k_small = QueryKey::new("characterize").config(&small);
        let k_large = QueryKey::new("characterize").config(&large);
        assert_ne!(k_small.hash128(), k_large.hash128());
    }

    #[test]
    fn field_separators_prevent_concatenation_aliasing() {
        // ("ab", "c") must not collide with ("a", "bc").
        let k1 = QueryKey::new("e").field("x", "ab").field("y", "c");
        let k2 = QueryKey::new("e").field("x", "a").field("y", "bc");
        assert_ne!(k1.hash128(), k2.hash128());
    }
}
