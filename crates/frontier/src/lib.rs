//! # frontier
//!
//! A from-scratch Rust reproduction of **Hestness, Ardalani & Diamos,
//! *Beyond Human-Level Accuracy: Computational Challenges in Deep
//! Learning* (PPoPP 2019)** — the compute-graph characterization, scaling
//! projection, and parallelization analysis of five deep-learning training
//! workloads, plus every substrate the paper depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`symath`] | exact symbolic algebra for tensor dimensions |
//! | [`cgraph`] | compute-graph IR, autodiff, algorithmic cost model, footprint scheduler |
//! | [`modelzoo`] | the five workloads (word LM, char LM, NMT, speech, ResNet) |
//! | [`scaling`] | power-law learning curves and Table 1 projections |
//! | [`roofline`] | Table 4 accelerator, roofline timing, cache-aware matmul traffic |
//! | [`parsim`] | ring-allreduce, data/model parallelism simulation |
//! | [`analysis`] | sweeps, trend fits, subbatch selection, Tables 2–5 assembly |
//!
//! This crate re-exports the full public API and adds a small convenience
//! layer ([`Study`]) for the most common end-to-end question: *what does it
//! take to train domain X to its accuracy frontier?*
//!
//! ```
//! use frontier::prelude::*;
//!
//! let study = Study::new(Domain::ImageClassification);
//! let report = study.frontier_report();
//! // ≈100× more images and ≈12× more parameters than current SOTA …
//! assert!(report.projection.data_scale > 50.0);
//! // … trainable in months, not millennia (unlike the language domains).
//! assert!(report.requirements.epoch_days < 400.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use analysis;
pub use cgraph;
pub use modelzoo;
pub use obs;
pub use parsim;
pub use roofline;
pub use scaling;
pub use symath;

mod querykey;

pub use querykey::QueryKey;

use modelzoo::{Domain, ModelConfig};
use roofline::Accelerator;
use scaling::{scaling_for, Projection};

/// Everything needed for typical use in one import.
pub mod prelude {
    pub use crate::{FrontierReport, QueryKey, Study};
    pub use analysis::{
        characterize, fit_trends, hardware_sensitivity, hardware_variants, subbatch_analysis,
        sweep_domain, word_lm_case_study, CharacterizationPoint, DomainTrends,
    };
    pub use cgraph::{
        apply_optimizer, build_training_step, cast_float_precision, footprint, DType, Graph,
        Optimizer, PointwiseFn, Scheduler,
    };
    pub use modelzoo::{Domain, ModelConfig, ModelGraph};
    pub use parsim::{
        data_parallel_point_compressed, data_parallel_sweep, plan as parallelism_plan,
        tensor_parallel_plan, CommConfig, GradCompression, Plan, PlanRequest, TensorParallelConfig,
        WorkerStep,
    };
    pub use roofline::{
        min_shards_to_fit, roofline_time, swap_report, Accelerator, CacheModel, HostLink,
    };
    pub use scaling::{scaling_for, LearningCurve, ModelSizeCurve};
    pub use symath::{Bindings, Expr, Symbol};
}

/// A frontier-training study of one domain on one accelerator.
#[derive(Clone, Debug)]
pub struct Study {
    domain: Domain,
    accelerator: Accelerator,
}

/// Combined output of [`Study::frontier_report`].
#[derive(Clone, Debug)]
pub struct FrontierReport {
    /// Data/model growth required to hit the accuracy target (Table 1).
    pub projection: Projection,
    /// Per-step compute, memory, footprint, and epoch time (Table 3).
    pub requirements: analysis::FrontierRow,
}

impl Study {
    /// A study of `domain` on the paper's Table 4 accelerator.
    pub fn new(domain: Domain) -> Study {
        Study {
            domain,
            accelerator: Accelerator::v100_like(),
        }
    }

    /// Override the accelerator.
    pub fn with_accelerator(mut self, accelerator: Accelerator) -> Study {
        self.accelerator = accelerator;
        self
    }

    /// The domain under study.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The accelerator configuration in use.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// The frontier model configuration (scaled to the projected parameter
    /// count).
    pub fn frontier_config(&self) -> ModelConfig {
        let projection = scaling_for(self.domain).project();
        ModelConfig::default_for(self.domain)
            .with_target_params(projection.target_params.round() as u64)
    }

    /// Full frontier report: projection plus training requirements.
    /// Builds the frontier-scale model (seconds of work for the language
    /// domains).
    pub fn frontier_report(&self) -> FrontierReport {
        FrontierReport {
            projection: scaling_for(self.domain).project(),
            requirements: analysis::frontier_row(self.domain, &self.accelerator),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_exposes_domain_and_accelerator() {
        let s = Study::new(Domain::WordLm);
        assert_eq!(s.domain(), Domain::WordLm);
        assert_eq!(s.accelerator().name, "V100-like (Table 4)");
    }

    #[test]
    fn frontier_config_matches_projection() {
        let s = Study::new(Domain::CharLm);
        let projection = scaling_for(Domain::CharLm).project();
        let cfg = s.frontier_config();
        let rel = (cfg.param_formula() as f64 - projection.target_params).abs()
            / projection.target_params;
        assert!(rel < 0.10, "config params off by {rel}");
    }

    #[test]
    fn custom_accelerator_flows_through() {
        let mut accel = Accelerator::v100_like();
        accel.name = "double-speed".into();
        accel.peak_flops *= 2.0;
        let s = Study::new(Domain::ImageClassification).with_accelerator(accel);
        let report = s.frontier_report();
        let baseline = Study::new(Domain::ImageClassification).frontier_report();
        assert!(report.requirements.step.seconds < baseline.requirements.step.seconds);
    }
}
